"""Tests for repro.obs.slo: burn-rate math, firing logic, adapters.

Every burn rate asserted here is hand-computed from the definition
``burn = ((total - good) / total) / (1 - objective)`` over windowed
cumulative-sample differences, against an injected fake clock — no
wall-clock dependence anywhere.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_WINDOWS,
    BurnRateWindow,
    MetricsRegistry,
    SLODefinition,
    SLOMonitor,
    availability_counts,
    latency_counts,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _monitor(objective=0.99, windows=None, **slo_kwargs):
    clock = FakeClock()
    slo = SLODefinition(name="avail", objective=objective, **slo_kwargs)
    mon = SLOMonitor(
        slo, windows=windows or DEFAULT_WINDOWS, clock=clock
    )
    return mon, clock


class TestDefinitions:
    def test_error_budget(self):
        slo = SLODefinition(name="x", objective=0.999)
        assert slo.error_budget == pytest.approx(0.001)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SLODefinition(name="x", objective=objective)

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            SLODefinition(name="", objective=0.99)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SLODefinition(name="x", objective=0.99, kind="durability")

    def test_latency_kind_needs_threshold(self):
        with pytest.raises(ValueError, match="latency_threshold_s"):
            SLODefinition(name="x", objective=0.99, kind="latency")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"long_s": 0, "short_s": 1, "threshold": 1},
            {"long_s": 60, "short_s": 120, "threshold": 1},
            {"long_s": 60, "short_s": 30, "threshold": 0},
        ],
    )
    def test_window_validation(self, kwargs):
        with pytest.raises(ValueError):
            BurnRateWindow(**kwargs)

    def test_monitor_needs_windows(self):
        with pytest.raises(ValueError, match="window"):
            SLOMonitor(SLODefinition(name="x", objective=0.99), windows=())


class TestBurnRateMath:
    def test_hand_computed_burn(self):
        # objective 0.99 -> budget 0.01.  Over the window: 100 requests,
        # 5 bad -> bad_rate 0.05 -> burn 5.0.
        mon, clock = _monitor(objective=0.99)
        mon.observe(0, 0)
        clock.advance(300)
        mon.observe(95, 100)
        assert mon.burn_rate(600) == pytest.approx(5.0)

    def test_windowed_difference_excludes_old_errors(self):
        # All the badness is older than the window: recent burn is 0.
        mon, clock = _monitor(objective=0.99)
        mon.observe(0, 0)  # zero point at t=0
        clock.advance(1)
        mon.observe(50, 100)  # 50 bad by t=1
        clock.advance(1000)
        mon.observe(150, 200)  # 100 good since
        assert mon.burn_rate(500) == pytest.approx(0.0)
        # The full-history window still sees them: 50 bad of 200.
        assert mon.burn_rate(2000) == pytest.approx(0.25 / 0.01)

    def test_baseline_is_youngest_sample_at_or_before_cutoff(self):
        mon, clock = _monitor(objective=0.9)  # budget 0.1
        mon.observe(0, 0)  # t=0
        clock.advance(100)
        mon.observe(100, 100)  # t=100, all good
        clock.advance(100)
        mon.observe(100, 110)  # t=200, 10 bad in last 100s
        # Window of exactly 100s at t=200: baseline is the t=100 sample,
        # so the delta is 10 requests, all bad -> burn 1.0 / 0.1.
        assert mon.burn_rate(100) == pytest.approx(10.0)

    def test_zero_traffic_window_burns_nothing(self):
        mon, clock = _monitor()
        assert mon.burn_rate(3600) == 0.0
        mon.observe(10, 10)
        clock.advance(7200)
        # No new samples: window delta is (0, 0).
        mon.observe(10, 10)
        assert mon.burn_rate(3600) == 0.0

    def test_total_failure_burns_full_inverse_budget(self):
        mon, clock = _monitor(objective=0.999)
        mon.observe(0, 0)
        clock.advance(60)
        mon.observe(0, 1000)
        assert mon.burn_rate(120) == pytest.approx(1000.0)


class TestObserveValidation:
    def test_time_backwards_raises(self):
        mon, clock = _monitor()
        mon.observe(1, 1, now=100.0)
        with pytest.raises(ValueError, match="backwards"):
            mon.observe(2, 2, now=50.0)

    def test_decreasing_counts_raise(self):
        mon, clock = _monitor()
        mon.observe(5, 10)
        clock.advance(1)
        with pytest.raises(ValueError, match="decreased"):
            mon.observe(4, 10)
        with pytest.raises(ValueError, match="decreased"):
            mon.observe(5, 9)

    def test_good_above_total_raises(self):
        mon, _ = _monitor()
        with pytest.raises(ValueError, match="good <= total"):
            mon.observe(11, 10)

    def test_negative_counts_raise(self):
        mon, _ = _monitor()
        with pytest.raises(ValueError):
            mon.observe(-1, 10)


class TestFiringLogic:
    WINDOWS = (BurnRateWindow(long_s=3600.0, short_s=300.0, threshold=10.0),)

    def test_fires_only_when_both_windows_exceed(self):
        # Sustained badness: both windows see burn 20 -> firing.
        mon, clock = _monitor(objective=0.99, windows=self.WINDOWS)
        mon.observe(0, 0)
        for _ in range(24):  # 2 hours of steady 20% errors
            clock.advance(300)
            last = mon._samples[-1]
            mon.observe(last[1] + 80, last[2] + 100)
        (alert,) = mon.evaluate()
        assert alert.long_burn == pytest.approx(20.0)
        assert alert.short_burn == pytest.approx(20.0)
        assert alert.firing

    def test_recovered_incident_does_not_fire(self):
        # The long window still carries the burn, but the short window
        # has recovered: no page (the "is it still happening?" guard).
        mon, clock = _monitor(objective=0.99, windows=self.WINDOWS)
        mon.observe(0, 0)
        clock.advance(300)
        mon.observe(0, 500)  # total outage, 5 minutes
        for _ in range(6):  # 30 clean minutes
            clock.advance(300)
            last = mon._samples[-1]
            mon.observe(last[1] + 100, last[2] + 100)
        (alert,) = mon.evaluate()
        assert alert.long_burn > self.WINDOWS[0].threshold
        assert alert.short_burn == pytest.approx(0.0)
        assert not alert.firing
        assert mon.firing() == []

    def test_snapshot_shape(self):
        mon, clock = _monitor(objective=0.99, windows=self.WINDOWS)
        mon.observe(0, 0)
        clock.advance(300)
        mon.observe(80, 100)  # burn 20, comfortably past threshold 10
        snap = mon.snapshot()
        assert snap["slo"] == "avail"
        assert snap["kind"] == "availability"
        assert snap["compliance"] == pytest.approx(0.8)
        assert snap["good"] == 80 and snap["total"] == 100
        (alert,) = snap["alerts"]
        assert alert["threshold"] == 10.0
        assert alert["firing"] is True
        assert snap["firing"] is True

    def test_empty_snapshot(self):
        mon, _ = _monitor(windows=self.WINDOWS)
        snap = mon.snapshot()
        assert snap["compliance"] is None
        assert snap["firing"] is False


class TestAdapters:
    def test_availability_counts_mapping(self):
        snap = {
            "batches": 100,
            "shed": 20,
            "timeouts": 5,
            "breaker_rejections": 10,
            "fallbacks": 4,
        }
        good, total = availability_counts(snap)
        assert total == 135  # batches + shed + timeouts + breaker
        assert good == 104  # batches + fallbacks (answered requests)

    def test_availability_counts_clamped_to_total(self):
        # Degenerate snapshot (more fallbacks than rejections) must not
        # produce good > total.
        good, total = availability_counts({"batches": 1, "fallbacks": 5})
        assert good == total == 1

    def test_observe_stats_feeds_monitor(self):
        mon, clock = _monitor(objective=0.99)
        mon.observe_stats({"batches": 0})
        clock.advance(300)
        mon.observe_stats({"batches": 99, "shed": 1})
        assert mon.burn_rate(600) == pytest.approx(1.0)

    def test_latency_counts_exact_at_bucket_bound(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "lat", "x", {}, bounds=(0.01, 0.02, 0.04)
        )
        for v in (0.005, 0.015, 0.03, 1.0):
            hist.observe(v)
        good, total = latency_counts(hist, 0.02)
        assert total == 4
        assert good == 2  # <= 0.02: the 0.005 and 0.015 observations

    def test_latency_counts_conservative_between_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat2", "x", {}, bounds=(0.01, 0.04))
        hist.observe(0.02)  # lands in the (0.01, 0.04] bucket
        good, total = latency_counts(hist, 0.03)
        # 0.02 <= 0.03 in truth, but the largest usable bound is 0.01:
        # the conservative reading undercounts good, never overcounts.
        assert (good, total) == (0.0, 1.0)

    def test_latency_counts_rejects_bad_threshold(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat3", "x", {})
        with pytest.raises(ValueError, match="positive"):
            latency_counts(hist, 0.0)

    def test_observe_histogram_needs_latency_slo(self):
        mon, _ = _monitor()  # availability kind
        reg = MetricsRegistry()
        hist = reg.histogram("lat4", "x", {})
        with pytest.raises(ValueError, match="latency"):
            mon.observe_histogram(hist)

    def test_observe_histogram_latency_slo(self):
        clock = FakeClock()
        mon = SLOMonitor(
            SLODefinition(
                name="lat-slo",
                objective=0.9,
                kind="latency",
                latency_threshold_s=0.02,
            ),
            clock=clock,
        )
        reg = MetricsRegistry()
        hist = reg.histogram("lat5", "x", {}, bounds=(0.01, 0.02, 0.04))
        mon.observe_histogram(hist)
        clock.advance(300)
        for v in (0.005, 0.03):
            hist.observe(v)
        mon.observe_histogram(hist)
        # 1 of 2 within 20ms -> bad_rate 0.5 -> burn 5.0 on a 0.1 budget.
        assert mon.burn_rate(600) == pytest.approx(5.0)
