"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        code = main(["demo", "--function", "F1", "--records", "2000", "--intervals", "16", "--max-depth", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CMP" in out
        assert "node #0" in out or "leaf #0" in out

    def test_fig18_small(self, capsys):
        code = main(["fig18", "--sizes", "2000", "--intervals", "16", "--max-depth", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SPRINT" in out and "CMP" in out

    def test_prediction(self, capsys):
        code = main(["prediction", "--records", "2000", "--intervals", "16", "--max-depth", "4"])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])
