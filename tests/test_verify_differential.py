"""The differential harness must (a) pass on healthy builders and (b) flag
a corrupted tree — both directions are tested, since a checker that never
fires proves nothing."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.baselines.sliq import SliqBuilder
from repro.core.splits import NumericSplit
from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous
from repro.eval.treegen import adversarial_dataset
from repro.verify.differential import (
    EPS,
    check_tree_against_oracle,
    estimator_bound,
    run_differential,
    tree_signature,
)
from repro.verify.oracle import OracleSplit


VERIFY_CONFIG = BuilderConfig(
    n_intervals=16, max_depth=6, min_records=25, reservoir_capacity=5000
)


class TestTreeSignature:
    def test_identical_builds_compare_equal(self, two_blob, fast_config):
        a = SliqBuilder(fast_config).build(two_blob).tree
        b = SliqBuilder(fast_config).build(two_blob).tree
        assert tree_signature(a) == tree_signature(b)

    def test_different_data_differ(self, two_blob, mixed_types, fast_config):
        a = SliqBuilder(fast_config).build(two_blob).tree
        b = SliqBuilder(fast_config).build(mixed_types).tree
        assert tree_signature(a) != tree_signature(b)


class TestRunDifferential:
    @pytest.mark.parametrize("profile", ["ties", "mixed", "skew"])
    def test_all_builders_clean(self, profile):
        ds = adversarial_dataset(profile, n=250, seed=3)
        report = run_differential(ds, VERIFY_CONFIG, workers=(2,))
        errors = [f for f in report.findings if f.severity == "error"]
        assert not errors, "\n".join(str(f) for f in errors)
        assert report.ok
        by_name = {o.builder: o for o in report.outcomes}
        assert set(by_name) == {"CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ"}
        for o in report.outcomes:
            assert o.parallel_identical
            assert 0.0 <= o.accuracy <= 1.0
            assert 0.0 <= o.oracle_agreement <= 1.0
        # Exact builders track the oracle with no estimator gap at all.
        assert by_name["SLIQ"].stats.max_gap <= EPS

    def test_rows_match_outcomes(self):
        ds = adversarial_dataset("near_boundary", n=200, seed=1)
        report = run_differential(
            ds, VERIFY_CONFIG, builders=("CMP-S", "SLIQ"), workers=()
        )
        rows = report.rows()
        assert len(rows) == 2
        for row in rows:
            assert {"builder", "accuracy", "max_gap", "max_bound"} <= set(row)


class TestDetectionPower:
    """A checker is only as good as its ability to fire."""

    def build(self, rng):
        X = np.column_stack([rng.normal(size=300), rng.normal(size=300)])
        y = (X[:, 0] > 0.0).astype(np.int64)
        ds = Dataset(X, y, Schema((continuous("a"), continuous("b")), ("n", "p")))
        result = SliqBuilder(
            VERIFY_CONFIG.with_(prune="none", max_depth=3)
        ).build(ds)
        return ds, result.tree

    def test_healthy_tree_passes(self, rng):
        ds, tree = self.build(rng)
        findings, stats = check_tree_against_oracle(
            tree, ds, VERIFY_CONFIG, "SLIQ"
        )
        assert not [f for f in findings if f.severity == "error"]
        assert stats.n_internal >= 1

    def test_corrupted_threshold_is_flagged(self, rng):
        ds, tree = self.build(rng)
        root = tree.root
        assert isinstance(root.split, NumericSplit)
        # Drag the root threshold far off the optimum: the achieved gini
        # (recomputed from actual routing) must now exceed the bound.
        root.split = NumericSplit(
            root.split.attr, float(np.quantile(ds.X[:, root.split.attr], 0.95))
        )
        findings, __ = check_tree_against_oracle(tree, ds, VERIFY_CONFIG, "SLIQ")
        kinds = {f.kind for f in findings if f.severity == "error"}
        assert kinds  # corruption cannot pass silently
        assert any("mismatch" in k or "gap" in k or "bound" in k for k in kinds)

    def test_corrupted_counts_are_flagged(self, rng):
        ds, tree = self.build(rng)
        leaf = next(n for n in tree.iter_nodes() if n.is_leaf)
        leaf.class_counts = leaf.class_counts + 1.0
        findings, __ = check_tree_against_oracle(tree, ds, VERIFY_CONFIG, "SLIQ")
        assert any(
            f.kind == "count_mismatch" and f.severity == "error" for f in findings
        )


class TestEstimatorBound:
    def make_oracle(self, numeric, categorical):
        return OracleSplit(
            split=None,
            gini=min(numeric, categorical),
            numeric_gini=numeric,
            numeric_attr=0,
            categorical_gini=categorical,
        )

    def test_exact_builders_get_eps(self, rng):
        X = rng.normal(size=(100, 1))
        b = estimator_bound(
            X, NumericSplit(0, 0.0), self.make_oracle(0.1, 0.2),
            VERIFY_CONFIG, 0.5, "SLIQ", 2.0, [0],
        )
        assert b == EPS

    def test_second_level_uses_numeric_reference(self, rng):
        # Categorical oracle strictly better: a first-level node gets no
        # oracle-side slack (the categorical side is exact), but a
        # second-level node competes among continuous attributes only,
        # so the numeric slack applies.
        X = rng.normal(size=(100, 1))
        args = (
            X, NumericSplit(0, 0.0), self.make_oracle(0.3, 0.1),
            VERIFY_CONFIG, 0.5, "CMP-S", 2.0, [0],
        )
        first = estimator_bound(*args, second_level=False)
        second = estimator_bound(*args, second_level=True)
        assert second > first

    def test_safety_scales_linearly(self, rng):
        X = rng.normal(size=(100, 1))
        args = (
            X, NumericSplit(0, 0.0), self.make_oracle(0.1, 0.2),
            VERIFY_CONFIG, 0.5, "CMP-S",
        )
        b1 = estimator_bound(*args[:6], 1.0, [0])
        b2 = estimator_bound(*args[:6], 2.0, [0])
        assert b2 - EPS == pytest.approx(2.0 * (b1 - EPS))
