"""Tests for bivariate histogram matrices (CMP-B's data structure)."""

import numpy as np
import pytest

from repro.core.histogram import ClassHistogram
from repro.core.matrix import AxisStats, HistogramMatrix, MatrixSet, pseudo_histogram
from repro.data.schema import Schema, categorical, continuous


def schema3():
    return Schema(
        (continuous("x"), continuous("y"), categorical("c", ("a", "b"))),
        ("n", "p"),
    )


def random_data(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = np.column_stack(
        [rng.uniform(0, 10, n), rng.uniform(0, 10, n), rng.integers(0, 2, n)]
    ).astype(float)
    y = rng.integers(0, 2, n)
    return X, y


def edges3():
    return {0: np.array([3.0, 6.0]), 1: np.array([2.0, 5.0, 8.0])}


class TestHistogramMatrix:
    def test_projections_match_1d_histograms(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        m = ms.matrices[1]
        # X marginal equals a direct 1-D histogram of x.
        hx = ClassHistogram(edges3()[0], 2)
        hx.update(X[:, 0], y)
        np.testing.assert_array_equal(m.x_marginal_counts(), hx.counts)
        hy = ClassHistogram(edges3()[1], 2)
        hy.update(X[:, 1], y)
        np.testing.assert_array_equal(m.y_marginal_counts(), hy.counts)

    def test_cell_counts(self):
        ms = MatrixSet.create(schema3(), 0, edges3())
        X = np.array([[1.0, 1.0, 0.0], [7.0, 9.0, 1.0]])
        y = np.array([0, 1])
        ms.update(X, y)
        m = ms.matrices[1]
        assert m.counts[0, 0, 0] == 1  # x=1 -> col 0, y=1 -> row 0, class 0
        assert m.counts[2, 3, 1] == 1  # x=7 -> col 2, y=9 -> row 3, class 1
        assert m.counts.sum() == 2

    def test_slice_conserves_counts(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        m = ms.matrices[1]
        total = m.y_marginal_counts()
        left = m.y_marginal_counts(0, 2)
        right = m.y_marginal_counts(2, None)
        np.testing.assert_array_equal(left + right, total)

    def test_merge(self):
        X, y = random_data()
        ms1 = MatrixSet.create(schema3(), 0, edges3())
        ms2 = MatrixSet.create(schema3(), 0, edges3())
        ms1.update(X[:250], y[:250])
        ms2.update(X[250:], y[250:])
        ms1.merge_from(ms2)
        full = MatrixSet.create(schema3(), 0, edges3())
        full.update(X, y)
        np.testing.assert_array_equal(
            ms1.matrices[1].counts, full.matrices[1].counts
        )
        np.testing.assert_array_equal(ms1.class_counts, full.class_counts)

    def test_merge_requires_same_x(self):
        ms1 = MatrixSet.create(schema3(), 0, edges3())
        ms2 = MatrixSet.create(schema3(), 1, edges3())
        with pytest.raises(ValueError, match="share the X attribute"):
            ms1.merge_from(ms2)


class TestMatrixSetMarginals:
    def test_x_marginal_slice_zeroes_outside(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        sliced = ms.x_marginal(1, 2)
        assert sliced.counts[0].sum() == 0
        assert sliced.counts[2].sum() == 0
        full = ms.x_marginal()
        np.testing.assert_array_equal(sliced.counts[1], full.counts[1])

    def test_x_marginal_given_y(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        # Condition on y rows [0, 2): x marginal of records with y <= 5.
        cond = ms.x_marginal_given_y(1, 0, 2)
        mask = X[:, 1] <= 5.0
        direct = ClassHistogram(edges3()[0], 2)
        direct.update(X[mask, 0], y[mask])
        np.testing.assert_array_equal(cond.counts, direct.counts)

    def test_y_marginal_rows(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        rows = ms.y_marginal_rows(1, 1, 3)
        assert rows.counts[0].sum() == 0
        assert rows.counts[3].sum() == 0

    def test_categorical_histograms(self):
        X, y = random_data()
        ms = MatrixSet.create(schema3(), 0, edges3())
        ms.update(X, y)
        cat = ms.categorical[2]
        assert cat.counts.sum() == len(y)

    def test_x_attr_must_be_continuous(self):
        with pytest.raises(ValueError, match="continuous"):
            MatrixSet.create(schema3(), 2, edges3())

    def test_atomic_propagates_to_marginal(self):
        # All x values identical inside column 0 -> marginal flags atomic.
        ms = MatrixSet.create(schema3(), 0, edges3())
        X = np.array([[1.5, 1.0, 0.0], [1.5, 9.0, 1.0], [7.0, 2.0, 0.0]])
        ms.update(X, np.array([0, 1, 0]))
        marg = ms.x_marginal()
        assert marg.atomic_intervals()[0]

    def test_nbytes_positive(self):
        ms = MatrixSet.create(schema3(), 0, edges3())
        assert ms.nbytes() > 0


class TestAxisStats:
    def test_update_and_merge(self):
        a = AxisStats(3)
        a.update(np.array([0, 2]), np.array([1.0, 9.0]))
        b = AxisStats(3)
        b.update(np.array([0]), np.array([-1.0]))
        a.merge_from(b)
        assert a.vmin[0] == -1.0
        assert a.vmax[0] == 1.0
        assert a.vmax[2] == 9.0


class TestPseudoHistogram:
    def test_behaves_like_real_histogram(self):
        X, y = random_data()
        real = ClassHistogram(edges3()[0], 2)
        real.update(X[:, 0], y)
        pseudo = pseudo_histogram(real.counts, real.edges, real.vmin, real.vmax, 2)
        np.testing.assert_array_equal(pseudo.boundary_ginis(), real.boundary_ginis())
        np.testing.assert_array_equal(
            pseudo.atomic_intervals(), real.atomic_intervals()
        )


class TestCountExactness:
    """Regression: float32 counts silently saturate at 2**24 = 16 777 216.

    The count cube is integer now and widens to int64 before any cell
    could exceed int32; totals must stay exact far past the float32
    saturation point.
    """

    def test_counts_exact_past_float32_saturation(self):
        m = HistogramMatrix(0, 1, np.array([5.0]), np.array([5.0]), 1)
        batch = 1 << 20
        x_bins = np.zeros(batch, dtype=np.intp)
        y_values = np.zeros(batch)
        labels = np.zeros(batch, dtype=np.int64)
        m.update_binned(x_bins, y_values, labels)
        # Double the single cell by self-merging clones: 2**20 -> 2**25.
        for _ in range(5):
            other = HistogramMatrix(0, 1, np.array([5.0]), np.array([5.0]), 1)
            other.counts = m.counts.copy()
            other._n_added = m._n_added
            m.merge_from(other)
        expected = batch * 32  # 2**25, well past float32's 2**24 plateau
        assert int(m.counts[0, 0, 0]) == expected
        # And incremental updates keep counting exactly from there.
        m.update_binned(x_bins[:3], y_values[:3], labels[:3])
        assert int(m.counts[0, 0, 0]) == expected + 3
        # float32 would have plateaued: (2**24) + 1 == 2**24 in float32.
        assert np.float32(2**24) + np.float32(1) == np.float32(2**24)

    def test_widens_to_int64_before_int32_overflow(self):
        m = HistogramMatrix(0, 1, np.array([5.0]), np.array([5.0]), 1)
        assert m.counts.dtype == np.int32  # 4 bytes/cell (Figure 19 story)
        m._n_added = np.iinfo(np.int32).max - 1
        m.update_binned(
            np.zeros(2, dtype=np.intp), np.zeros(2), np.zeros(2, dtype=np.int64)
        )
        assert m.counts.dtype == np.int64

    def test_merge_widens(self):
        a = HistogramMatrix(0, 1, np.array([5.0]), np.array([5.0]), 1)
        b = HistogramMatrix(0, 1, np.array([5.0]), np.array([5.0]), 1)
        a._n_added = 2**30
        b._n_added = 2**30 + 1
        a.merge_from(b)
        assert a.counts.dtype == np.int64
