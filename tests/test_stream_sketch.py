"""Property tests for the streaming quantile / heavy-hitter sketches.

The rank-error guarantee must hold on *adversarial* stream orders, not
just i.i.d. data: sorted and reversed streams maximize compaction skew,
duplicate-heavy streams stress tied values, and NaN-laced streams must
not poison ranks.  Merge must be associative and commutative within the
summed error bounds, and serialization must round-trip exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.discretize import Discretizer
from repro.stream.sketch import HeavyHitterSketch, QuantileSketch

EPS_TARGET = 0.02


def _exact_rank(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    finite = values[~np.isnan(values)]
    return np.array([(finite <= t).sum() for t in thresholds], dtype=np.float64)


def _adversarial_streams(rng: np.random.Generator) -> dict[str, np.ndarray]:
    base = rng.normal(0.0, 10.0, 40_000)
    dup = np.repeat(rng.normal(size=400), 100)
    rng.shuffle(dup)
    nan_laced = base.copy()
    nan_laced[rng.random(len(base)) < 0.05] = np.nan
    return {
        "sorted": np.sort(base),
        "reversed": np.sort(base)[::-1],
        "duplicate_heavy": dup,
        "nan_laced": nan_laced,
        "shuffled": rng.permutation(base),
    }


class TestQuantileSketchRankError:
    @pytest.mark.parametrize(
        "order", ["sorted", "reversed", "duplicate_heavy", "nan_laced", "shuffled"]
    )
    def test_rank_error_within_bound_and_eps(self, rng, order):
        values = _adversarial_streams(rng)[order]
        sk = QuantileSketch(eps=EPS_TARGET)
        # Feed in uneven batch sizes to exercise mid-batch cascades.
        i = 0
        for size in (1, 7, 100, 1000, 10**9):
            sk.extend(values[i : i + size])
            i += size
            if i >= len(values):
                break
        finite = values[~np.isnan(values)]
        n = len(finite)
        assert sk.n_seen == n
        thresholds = np.quantile(finite, np.linspace(0.0, 1.0, 41))
        err = np.abs(sk.rank(thresholds) - _exact_rank(values, thresholds))
        assert err.max() <= sk.rank_error_bound()
        assert sk.rank_error_bound() <= EPS_TARGET * n

    def test_weight_conservation(self, rng):
        values = rng.normal(size=12_345)
        sk = QuantileSketch(eps=0.05)
        sk.extend(values)
        _, w = sk._weighted_items()
        assert w.sum() == sk.n_seen

    def test_nan_counted_not_ranked(self, rng):
        sk = QuantileSketch(eps=0.1)
        sk.extend(np.array([np.nan, 1.0, np.nan, 2.0]))
        assert sk.n_seen == 2
        assert sk.n_nan == 2
        assert sk.rank(np.array([5.0]))[0] == 2.0

    def test_min_max_exact(self, rng):
        values = rng.normal(size=30_000)
        sk = QuantileSketch(eps=0.01)
        sk.extend(values)
        assert sk.vmin == values.min()
        assert sk.vmax == values.max()

    def test_edges_are_realizable_splits(self, rng):
        values = rng.normal(size=20_000)
        sk = QuantileSketch(eps=0.02)
        sk.extend(values)
        edges = sk.edges(16)
        assert np.all(np.diff(edges) > 0)
        assert np.all(edges < values.max())
        # Every edge is an actual retained data value.
        assert np.all(np.isin(edges, values))
        disc = Discretizer.from_sketch(sk, 16)
        assert disc.n_intervals == len(edges) + 1


class TestQuantileSketchMerge:
    def test_merge_matches_one_shot_within_eps(self, rng):
        a_vals = rng.normal(0, 1, 15_000)
        b_vals = rng.normal(3, 2, 25_000)
        both = np.concatenate([a_vals, b_vals])
        a = QuantileSketch(eps=EPS_TARGET)
        a.extend(a_vals)
        b = QuantileSketch(eps=EPS_TARGET)
        b.extend(b_vals)
        merged = a.merge(b)
        one_shot = QuantileSketch(eps=EPS_TARGET)
        one_shot.extend(both)
        assert merged.n_seen == len(both)
        thresholds = np.quantile(both, np.linspace(0.0, 1.0, 21))
        exact = _exact_rank(both, thresholds)
        for sk in (merged, one_shot):
            err = np.abs(sk.rank(thresholds) - exact)
            assert err.max() <= sk.rank_error_bound()
            assert sk.rank_error_bound() <= EPS_TARGET * len(both)

    def test_merge_commutative_within_bound(self, rng):
        a_vals = rng.normal(size=8_000)
        b_vals = rng.uniform(-5, 5, 12_000)
        both = np.concatenate([a_vals, b_vals])
        a1, b1 = QuantileSketch(EPS_TARGET), QuantileSketch(EPS_TARGET)
        a1.extend(a_vals)
        b1.extend(b_vals)
        ab, ba = a1.merge(b1), b1.merge(a1)
        thresholds = np.quantile(both, np.linspace(0.0, 1.0, 21))
        exact = _exact_rank(both, thresholds)
        for sk in (ab, ba):
            assert np.abs(sk.rank(thresholds) - exact).max() <= sk.rank_error_bound()
        # The two orders' estimates differ at most by the two bounds.
        gap = np.abs(ab.rank(thresholds) - ba.rank(thresholds)).max()
        assert gap <= ab.rank_error_bound() + ba.rank_error_bound()

    def test_merge_associative_within_bound(self, rng):
        parts = [rng.normal(i, 1 + i, 6_000) for i in range(3)]
        both = np.concatenate(parts)
        sks = []
        for p in parts:
            sk = QuantileSketch(EPS_TARGET)
            sk.extend(p)
            sks.append(sk)
        left = sks[0].merge(sks[1]).merge(sks[2])
        right = sks[0].merge(sks[1].merge(sks[2]))
        thresholds = np.quantile(both, np.linspace(0.0, 1.0, 21))
        exact = _exact_rank(both, thresholds)
        for sk in (left, right):
            assert sk.n_seen == len(both)
            assert np.abs(sk.rank(thresholds) - exact).max() <= sk.rank_error_bound()
            assert sk.rank_error_bound() <= EPS_TARGET * len(both)

    def test_merge_rejects_mixed_capacity(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=64).merge(QuantileSketch(capacity=128))


class TestQuantileSketchSerialization:
    def test_round_trip_exact(self, rng):
        values = rng.normal(size=25_000)
        values[::97] = np.nan
        sk = QuantileSketch(eps=0.03)
        sk.extend(values)
        clone = QuantileSketch.from_dict(sk.to_dict())
        thresholds = np.linspace(-3, 3, 31)
        assert np.array_equal(sk.rank(thresholds), clone.rank(thresholds))
        assert clone.rank_error_bound() == sk.rank_error_bound()
        assert clone.n_seen == sk.n_seen
        assert clone.n_nan == sk.n_nan
        # Round-trip must preserve behaviour, not just state: further
        # updates on both must stay identical.
        more = rng.normal(size=5_000)
        sk.extend(more)
        clone.extend(more)
        assert np.array_equal(sk.rank(thresholds), clone.rank(thresholds))

    def test_json_serializable(self, rng):
        import json

        sk = QuantileSketch(eps=0.05)
        sk.extend(rng.normal(size=1_000))
        restored = QuantileSketch.from_dict(json.loads(json.dumps(sk.to_dict())))
        assert restored.n_seen == sk.n_seen

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict({"kind": "heavy_hitter"})


class TestHeavyHitterSketch:
    def test_exact_when_capacity_covers_cardinality(self, rng):
        codes = rng.integers(0, 8, 10_000)
        labels = rng.integers(0, 2, 10_000)
        hh = HeavyHitterSketch(capacity=8, n_classes=2)
        for i in range(0, 10_000, 777):
            hh.extend(codes[i : i + 777], labels[i : i + 777])
        assert hh.error_bound() == 0.0
        expect = np.zeros((8, 2))
        for c, l in zip(codes, labels):
            expect[c, l] += 1
        assert np.allclose(hh.matrix(8), expect)

    def test_undercount_within_bound(self, rng):
        # 4 heavy codes + a long tail; capacity 6 forces evictions.
        heavy = np.repeat(np.arange(4), 2_000)
        tail = rng.integers(4, 104, 1_000)
        codes = rng.permutation(np.concatenate([heavy, tail]))
        labels = (codes % 2).astype(np.int64)
        hh = HeavyHitterSketch(capacity=6, n_classes=2)
        hh.extend(codes, labels)
        bound = hh.error_bound()
        assert bound > 0
        mat = hh.matrix(104)
        for code in range(4):
            true_total = float(np.sum(codes == code))
            assert mat[code].sum() <= true_total + 1e-9
            assert mat[code].sum() >= true_total - bound - 1e-9

    def test_merge(self, rng):
        c1, l1 = rng.integers(0, 5, 4_000), rng.integers(0, 2, 4_000)
        c2, l2 = rng.integers(0, 5, 6_000), rng.integers(0, 2, 6_000)
        a = HeavyHitterSketch(5, 2)
        a.extend(c1, l1)
        b = HeavyHitterSketch(5, 2)
        b.extend(c2, l2)
        merged = a.merge(b)
        expect = np.zeros((5, 2))
        for c, l in zip(np.concatenate([c1, c2]), np.concatenate([l1, l2])):
            expect[c, l] += 1
        assert np.allclose(merged.matrix(5), expect)
        assert merged.error_bound() == 0.0

    def test_round_trip(self, rng):
        hh = HeavyHitterSketch(4, 3)
        hh.extend(rng.integers(0, 9, 2_000), rng.integers(0, 3, 2_000))
        clone = HeavyHitterSketch.from_dict(hh.to_dict())
        assert np.array_equal(hh.matrix(9), clone.matrix(9))
        assert clone.error_bound() == hh.error_bound()
        assert clone.n_seen == hh.n_seen

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterSketch(0, 2)
        with pytest.raises(ValueError):
            HeavyHitterSketch(4, 1)
