"""Tests for the STATLOG stand-in generator."""

import numpy as np
import pytest

from repro.data.statlog import STATLOG_SPECS, all_statlog, generate_statlog


class TestShapes:
    @pytest.mark.parametrize("name", sorted(STATLOG_SPECS))
    def test_matches_spec(self, name):
        spec = STATLOG_SPECS[name]
        ds = generate_statlog(name, seed=0)
        assert ds.n_records == spec.n_records
        assert ds.n_attributes == spec.n_attributes
        assert ds.n_classes == spec.n_classes

    def test_paper_record_counts(self):
        # The counts the paper's Table 1 reports.
        assert STATLOG_SPECS["letter"].n_records == 15_000
        assert STATLOG_SPECS["satimage"].n_records == 4_435
        assert STATLOG_SPECS["segment"].n_records == 2_310
        assert STATLOG_SPECS["shuttle"].n_records == 43_500


class TestContent:
    def test_all_classes_present(self):
        ds = generate_statlog("segment", seed=0)
        assert len(np.unique(ds.y)) == ds.n_classes

    def test_informative_attribute_separates(self):
        # The first attribute should carry far more signal than the last.
        ds = generate_statlog("shuttle", seed=0)
        from repro.core.gini import exact_best_threshold, gini

        node_gini = float(gini(ds.class_counts()))
        __, g_first = exact_best_threshold(ds.column(0), ds.y, ds.n_classes)
        __, g_last = exact_best_threshold(
            ds.column(ds.n_attributes - 1), ds.y, ds.n_classes
        )
        assert g_first < g_last
        assert node_gini - g_first > 5 * (node_gini - g_last)

    def test_deterministic(self):
        a = generate_statlog("letter", seed=3)
        b = generate_statlog("letter", seed=3)
        np.testing.assert_array_equal(a.X, b.X)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown STATLOG"):
            generate_statlog("iris")

    def test_all_statlog(self):
        out = all_statlog(seed=1)
        assert set(out) == set(STATLOG_SPECS)
