"""Tests for the table/figure experiment drivers (small scale)."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.eval import experiments


@pytest.fixture(scope="module")
def small_config() -> BuilderConfig:
    return experiments.default_config(
        n_intervals=24, max_depth=6, min_records=40, reservoir_capacity=4000
    )


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        # Small Agrawal sets keep the test quick; the STATLOG stand-ins are
        # generated at their paper sizes.
        return experiments.table1(seed=0, agrawal_records=20_000)

    def test_row_layout(self, rows):
        assert len(rows) == 12  # 6 datasets x 2 interval counts
        for row in rows:
            assert set(row) >= {
                "dataset", "records", "exact_attr", "exact_gini",
                "intervals", "alive", "cmp_attr", "cmp_gini",
            }

    def test_alive_counts_bounded(self, rows):
        for row in rows:
            assert 0 <= row["alive"] <= 2

    def test_large_datasets_match_exact(self, rows):
        # Paper claim: with enough intervals CMP picks the same attribute
        # as the exact algorithm on the large synthetic functions.
        for row in rows:
            if row["dataset"].startswith("Function") and row["intervals"] >= 50:
                assert row["cmp_attr"] == "-", row

    def test_cmp_gini_close_when_attr_matches(self, rows):
        for row in rows:
            if row["cmp_attr"] == "-" and row["cmp_gini"] != "-":
                assert row["cmp_gini"] <= row["exact_gini"] + 0.02


class TestFig2:
    def test_curve_outputs(self):
        out = experiments.fig2_gini_curve(n_records=5_000, n_intervals=16, seed=0)
        q = len(out["edges"]) + 1
        assert len(out["boundary_gini"]) == q - 1
        assert len(out["estimates"]) == q
        assert np.isfinite(out["gini_min"][0])
        assert np.all(out["alive_intervals"] >= 0)
        # Estimates at alive intervals undercut the best boundary gini.
        for i in out["alive_intervals"]:
            assert out["estimates"][i] < out["gini_min"][0]


class TestSweeps:
    def test_scalability_rows(self, small_config):
        records = experiments.scalability("F2", (2_000, 4_000), small_config, seed=0)
        assert len(records) == 6  # 2 sizes x 3 family members
        names = {r.builder for r in records}
        assert names == {"CMP-S", "CMP-B", "CMP"}
        # Simulated time grows with the training-set size for each builder.
        for name in names:
            series = [r.simulated_ms for r in records if r.builder == name]
            assert series[1] > series[0]

    def test_comparison_rows(self, small_config):
        records = experiments.comparison("F2", (3_000,), small_config, seed=0)
        assert {r.builder for r in records} == {
            "CMP", "SPRINT", "RainForest", "CLOUDS",
        }

    def test_comparison_f(self, small_config):
        records = experiments.comparison_f((4_000,), small_config, seed=0)
        by_name = {r.builder: r for r in records}
        # CMP's tree on Function f is far smaller than SPRINT's (Fig 9 vs 13).
        assert by_name["CMP"].nodes < by_name["SPRINT"].nodes

    def test_memory_rows(self, small_config):
        records = experiments.memory_usage("F2", (3_000,), small_config, seed=0)
        by_name = {r.builder: r for r in records}
        assert by_name["RainForest"].peak_memory_bytes > by_name["CMP"].peak_memory_bytes

    def test_prediction_accuracy(self, small_config):
        out = experiments.prediction_accuracy(4_000, small_config, seed=0)
        assert out["predictions_made"] > 0
        assert 0.0 <= out["accuracy"] <= 1.0

    def test_records_as_rows(self, small_config):
        records = experiments.comparison("F2", (2_000,), small_config, seed=0)
        rows = experiments.records_as_rows(records)
        assert len(rows) == len(records)
        assert all("builder" in r for r in rows)
