"""Tests for the simulated-disk layer (pager + metrics)."""

import numpy as np
import pytest

from repro.io.metrics import BuildStats, CostModel, IOStats, MemoryTracker, Stopwatch
from repro.io.pager import PagedTable, ScanChunk


def make_table(n=1000, page_records=100, pages_per_chunk=2, stats=None):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 2, n)
    return (
        PagedTable(X, y, stats=stats, page_records=page_records, pages_per_chunk=pages_per_chunk),
        X,
        y,
    )


class TestPagedTable:
    def test_scan_yields_everything_in_order(self):
        table, X, y = make_table()
        chunks = list(table.scan())
        np.testing.assert_array_equal(np.concatenate([c.X for c in chunks]), X)
        np.testing.assert_array_equal(np.concatenate([c.y for c in chunks]), y)
        starts = [c.start for c in chunks]
        assert starts == sorted(starts)

    def test_chunk_rids(self):
        table, __, __ = make_table(n=450, page_records=100, pages_per_chunk=1)
        for chunk in table.scan():
            np.testing.assert_array_equal(chunk.rids, np.arange(chunk.start, chunk.stop))

    def test_scan_accounting(self):
        stats = IOStats()
        table, __, __ = make_table(n=1050, page_records=100, stats=stats)
        list(table.scan())
        assert stats.scans == 1
        assert stats.pages_read == 11  # ceil(1050 / 100)
        assert stats.records_read == 1050
        list(table.scan())
        assert stats.scans == 2
        assert stats.pages_read == 22

    def test_n_pages(self):
        table, __, __ = make_table(n=1001, page_records=100)
        assert table.n_pages == 11

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            PagedTable(rng.normal(size=10), rng.integers(0, 2, 10))
        with pytest.raises(ValueError, match="same number"):
            PagedTable(rng.normal(size=(10, 2)), rng.integers(0, 2, 9))
        with pytest.raises(ValueError, match="positive"):
            PagedTable(rng.normal(size=(10, 2)), rng.integers(0, 2, 10), page_records=0)


class TestIOStats:
    def test_counters(self):
        s = IOStats()
        s.begin_scan()
        s.count_pages(3, 300)
        s.count_aux_read(50)
        s.count_aux_write(20)
        s.count_seek(2)
        s.count_retry(4.0)
        snap = s.snapshot()
        assert snap == {
            "scans": 1,
            "pages_read": 3,
            "records_read": 300,
            "aux_records_read": 50,
            "aux_records_written": 20,
            "random_seeks": 2,
            "read_retries": 1,
            "backoff_ms": 4.0,
        }

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IOStats().count_pages(-1, 0)


class TestMemoryTracker:
    def test_peak_tracks_total(self):
        m = MemoryTracker()
        m.allocate("a", 100)
        m.allocate("b", 50)
        assert m.peak == 150
        m.release("a")
        assert m.current == 50
        m.allocate("c", 60)
        assert m.peak == 150  # 110 < 150

    def test_reallocate_replaces(self):
        m = MemoryTracker()
        m.allocate("a", 100)
        m.allocate("a", 30)
        assert m.current == 30

    def test_release_prefix(self):
        m = MemoryTracker()
        m.allocate("hist/1", 10)
        m.allocate("hist/2", 20)
        m.allocate("buf/1", 5)
        m.release_prefix("hist/")
        assert m.current == 5

    def test_release_idempotent(self):
        m = MemoryTracker()
        m.release("nothing")
        assert m.current == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().allocate("x", -1)


class TestCostModel:
    def test_simulated_time_components(self):
        s = IOStats()
        s.count_pages(10, 1000)
        s.count_seek(2)
        s.count_aux_read(500)
        model = CostModel(seq_page_ms=5.0, seek_ms=10.0, cpu_record_us=15.0, aux_record_us=8.0)
        expected = 10 * 5.0 + 2 * 10.0 + 1000 * 15.0 / 1000 + 500 * 8.0 / 1000
        assert model.simulated_ms(s) == pytest.approx(expected)

    def test_scans_dominate(self):
        # A full scan must cost far more than per-level CPU bookkeeping.
        s = IOStats()
        s.count_pages(500, 100_000)
        io_time = CostModel().simulated_ms(s)
        s2 = IOStats()
        s2.count_aux_read(100_000)
        aux_time = CostModel().simulated_ms(s2)
        assert io_time > 3 * aux_time


class TestBuildStats:
    def test_summary_keys(self):
        stats = BuildStats()
        stats.io.begin_scan()
        stats.io.count_pages(1, 10)
        summary = stats.summary()
        assert summary["scans"] == 1
        assert "simulated_ms" in summary
        assert "peak_memory_bytes" in summary

    def test_prediction_accuracy(self):
        stats = BuildStats()
        assert stats.prediction_accuracy == 0.0
        stats.predictions_made = 4
        stats.predictions_correct = 3
        assert stats.prediction_accuracy == 0.75

    def test_stopwatch(self):
        stats = BuildStats()
        with Stopwatch(stats):
            sum(range(1000))
        assert stats.wall_seconds > 0


class TestCostModelAccounting:
    def test_backoff_added_verbatim(self):
        s = IOStats()
        s.count_pages(10, 1000)
        base = CostModel().simulated_ms(s)
        s.count_retry(25.0)
        s.count_retry(50.0)
        assert CostModel().simulated_ms(s) == pytest.approx(base + 75.0)

    def test_workers_divide_cpu_only(self):
        s = IOStats()
        s.count_pages(10, 10_000)
        s.count_seek(3)
        s.count_aux_read(2_000)
        s.count_retry(40.0)
        model = CostModel(
            seq_page_ms=5.0, seek_ms=10.0, cpu_record_us=15.0, aux_record_us=8.0
        )
        serial = model.simulated_ms(s, scan_workers=1)
        quad = model.simulated_ms(s, scan_workers=4)
        cpu_serial = 10_000 * 15.0 / 1000.0
        # Only the CPU charge shrinks; I/O, aux and backoff stay serial.
        assert serial - quad == pytest.approx(cpu_serial * (1 - 1 / 4))
        fixed = 10 * 5.0 + 3 * 10.0 + 2_000 * 8.0 / 1000.0 + 40.0
        assert quad == pytest.approx(fixed + cpu_serial / 4)

    def test_workers_floor_at_one(self):
        s = IOStats()
        s.count_pages(1, 100)
        assert CostModel().simulated_ms(s, scan_workers=0) == pytest.approx(
            CostModel().simulated_ms(s, scan_workers=1)
        )


class TestMemoryTrackerThreadSafety:
    def test_concurrent_allocate_release_conserves_total(self):
        import threading

        tracker = MemoryTracker()

        def churn(worker: int):
            for i in range(500):
                tracker.allocate(f"w{worker}/a{i}", 64)
                tracker.release(f"w{worker}/a{i}")
            tracker.allocate(f"w{worker}/kept", 1000)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Lost updates under a racy += would leave current != sum(live).
        assert tracker.current == 4 * 1000
        assert tracker.current == sum(tracker.live_allocations().values())
        assert tracker.peak >= tracker.current

    def test_concurrent_release_prefix(self):
        import threading

        tracker = MemoryTracker()
        for w in range(4):
            for i in range(100):
                tracker.allocate(f"w{w}/a{i}", 8)

        threads = [
            threading.Thread(target=tracker.release_prefix, args=(f"w{w}/",))
            for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.current == 0
        assert tracker.live_allocations() == {}


class TestBuildStatsPhase:
    def test_phase_accumulates(self):
        stats = BuildStats()
        with stats.phase("scan"):
            pass
        with stats.phase("scan"):
            pass
        with stats.phase("resolve"):
            pass
        assert set(stats.phase_seconds) == {"scan", "resolve"}
        assert stats.phase_seconds["scan"] >= 0.0

    def test_phase_records_elapsed_on_error(self):
        stats = BuildStats()
        with pytest.raises(RuntimeError):
            with stats.phase("scan"):
                raise RuntimeError("boom")
        assert "scan" in stats.phase_seconds

    def test_phase_concurrent_entries_all_counted(self):
        import threading
        import time

        stats = BuildStats()
        start = threading.Barrier(4)

        def work():
            start.wait()
            for __ in range(5):
                with stats.phase("scan"):
                    time.sleep(0.002)

        threads = [threading.Thread(target=work) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 4 threads x 5 entries x ~2ms each: a racy read-modify-write on
        # the dict would drop whole entries and land far below the floor.
        assert stats.phase_seconds["scan"] >= 4 * 5 * 0.002 * 0.5
