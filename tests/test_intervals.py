"""Tests for attribute analysis and alive-interval selection."""

import numpy as np
import pytest

from repro.core.histogram import ClassHistogram
from repro.core.intervals import (
    analyze_attribute,
    choose_split_attribute,
    select_alive_intervals,
)


def hist_from_values(values, labels, edges, n_classes=2):
    hist = ClassHistogram(np.asarray(edges, dtype=float), n_classes)
    hist.update(np.asarray(values, dtype=float), np.asarray(labels))
    return hist


class TestAnalyzeAttribute:
    def test_gini_min_at_true_boundary(self):
        # Classes separated exactly at value 2 (an edge).
        values = [0.5, 1.5, 2.0, 2.5, 3.5, 4.5]
        labels = [0, 0, 0, 1, 1, 1]
        hist = hist_from_values(values, labels, [1.0, 2.0, 3.0, 4.0])
        a = analyze_attribute(0, hist)
        assert a.gini_min == pytest.approx(0.0)
        assert a.best_boundary == 1  # edge value 2.0

    def test_degenerate_boundaries_masked(self):
        # All records above the last edge: every boundary is degenerate.
        hist = hist_from_values([5.0, 6.0], [0, 1], [1.0, 2.0])
        a = analyze_attribute(0, hist)
        assert not a.has_boundaries
        assert np.all(np.isinf(a.boundary_gini))

    def test_single_populated_interval_still_splittable(self):
        # Records concentrate in one interval but with two distinct values:
        # the interval stays alive-capable (est finite), so a split remains
        # reachable through buffering.
        hist = hist_from_values([5.0, 5.2, 5.0, 5.2], [0, 0, 1, 1], [1.0, 2.0])
        a = analyze_attribute(0, hist)
        assert not a.has_boundaries
        assert a.splittable

    def test_constant_attribute_not_exactly_splittable(self):
        hist = hist_from_values([5.0, 5.0, 5.0], [0, 1, 0], [1.0, 2.0])
        a = analyze_attribute(0, hist)
        # Atomic single interval: estimate collapses to boundary values,
        # which are degenerate here.
        assert not a.has_boundaries

    def test_empty_interval_estimates_inf(self):
        hist = hist_from_values([0.5, 2.5], [0, 1], [1.0, 2.0])
        a = analyze_attribute(0, hist)
        assert np.isinf(a.est[1])  # middle interval empty

    def test_footnote_clamp_limits_undershoot(self, rng):
        # The estimate can undershoot the adjacent boundaries by at most
        # 2*N_i/N (footnote 1 of the paper).
        values = rng.uniform(0, 10, 2000)
        labels = (values > 5.01).astype(int)
        edges = np.quantile(values, np.linspace(0.1, 0.9, 9))
        hist = hist_from_values(values, labels, np.unique(edges))
        a = analyze_attribute(0, hist)
        n = hist.n_records
        pops = hist.counts.sum(axis=1)
        raw_bg = np.concatenate(([a.node_gini], hist.boundary_ginis(), [a.node_gini]))
        adj = np.minimum(raw_bg[:-1], raw_bg[1:])
        populated = pops > 0
        assert np.all(a.est[populated] >= adj[populated] - 2 * pops[populated] / n - 1e-9)


class TestSelectAlive:
    def analysis(self, values, labels, edges):
        return analyze_attribute(0, hist_from_values(values, labels, edges))

    def test_no_alive_when_boundary_is_optimal(self):
        # Perfect separation exactly at an edge: no interior can be better.
        values = [0.5, 0.7, 1.5, 1.7]
        labels = [0, 0, 1, 1]
        a = self.analysis(values, labels, [1.0])
        assert select_alive_intervals(a, 2) == []

    def test_alive_when_interior_is_better(self, rng):
        # The optimum (value 5) is strictly inside interval (2, 8].
        values = rng.uniform(0, 10, 1000)
        labels = (values > 5.0).astype(int)
        a = self.analysis(values, labels, [2.0, 8.0])
        alive = select_alive_intervals(a, 2)
        assert 1 in alive

    def test_forced_adjacent_interval(self, rng):
        # Whenever anything is alive, an interval adjacent to the best
        # boundary must be included (zone-edge invariant).
        values = rng.uniform(0, 10, 3000)
        labels = ((values > 3.3) & (values < 7.7)).astype(int)
        edges = np.quantile(values, np.linspace(0.05, 0.95, 19))
        a = self.analysis(values, labels, np.unique(edges))
        alive = select_alive_intervals(a, 2)
        if alive:
            assert a.best_boundary in alive or a.best_boundary + 1 in alive

    def test_cap_respected(self, rng):
        values = rng.uniform(0, 10, 2000)
        labels = (np.sin(values) > 0).astype(int)
        edges = np.quantile(values, np.linspace(0.1, 0.9, 9))
        a = self.analysis(values, labels, np.unique(edges))
        for cap in (0, 1, 2, 3):
            assert len(select_alive_intervals(a, cap)) <= cap

    def test_negative_cap_rejected(self):
        a = self.analysis([0.5, 1.5], [0, 1], [1.0])
        with pytest.raises(ValueError):
            select_alive_intervals(a, -1)


class TestChooseSplitAttribute:
    def test_picks_lowest_score(self, rng):
        n = 2000
        good = rng.uniform(0, 1, n)
        labels = (good > 0.5).astype(int)
        noise = rng.uniform(0, 1, n)
        edges = np.linspace(0.1, 0.9, 9)
        a_good = analyze_attribute(0, hist_from_values(good, labels, edges))
        a_noise = analyze_attribute(1, hist_from_values(noise, labels, edges))
        winner = choose_split_attribute([a_noise, a_good], 2)
        assert winner is not None
        assert winner.attr == 0

    def test_constant_attribute_offers_no_gain(self):
        # A constant attribute's score collapses to the node's own gini, so
        # the builder-level gain check rejects it.
        a = analyze_attribute(0, hist_from_values([5.0, 5.0], [0, 1], [1.0]))
        winner = choose_split_attribute([a], 2)
        assert winner is None or winner.score >= a.node_gini - 1e-12

    def test_returns_none_for_empty_analysis_list(self):
        assert choose_split_attribute([], 2) is None

    def test_winner_gets_alive_populated(self, rng):
        values = rng.uniform(0, 10, 2000)
        labels = (values > 5.0).astype(int)
        a = analyze_attribute(0, hist_from_values(values, labels, [2.0, 8.0]))
        winner = choose_split_attribute([a], 2)
        assert winner is not None
        assert winner.alive  # optimum is interior, so something is alive


class TestAliveZoneBoundaries:
    """Tie handling at alive-interval boundaries (verify-harness audit).

    Zones follow the same ``(lo, hi]`` convention as interval binning: a
    record exactly on an alive interval's lower bound belongs to the
    region *below* (it is not buffered), one exactly on the upper bound
    is buffered.
    """

    def test_value_on_lower_bound_is_region(self):
        from repro.core.builder import classify_zones, zone_boundaries

        bounds = zone_boundaries([(1.0, 2.0)])
        zones = classify_zones(np.array([1.0, 1.5, 2.0, 2.5]), bounds)
        # zone 0 = region below, 1 = alive, 2 = region above
        assert list(zones) == [0, 1, 1, 2]

    def test_ulp_separated_bounds(self):
        from repro.core.builder import classify_zones, zone_boundaries

        lo, hi = 0.5, np.nextafter(0.5, 1.0)
        bounds = zone_boundaries([(lo, hi)])
        zones = classify_zones(np.array([lo, hi, np.nextafter(hi, 1.0)]), bounds)
        assert list(zones) == [0, 1, 2]

    def test_degenerate_alive_interval_rejected(self):
        from repro.core.builder import zone_boundaries

        with pytest.raises(ValueError):
            zone_boundaries([(1.0, 1.0)])

    def test_resolver_finds_exact_cut_between_duplicated_atoms(self):
        # Two ULP-separated atoms inside one alive interval: the resolved
        # threshold must be the lower atom exactly, with the exact gini.
        from repro.core.builder import resolve_exact_threshold

        lo_v = 0.500000001
        hi_v = 0.500000002
        buf_values = np.array([lo_v] * 15 + [hi_v] * 27)
        buf_labels = np.array([0] * 15 + [1] * 27)
        totals = np.array([15.0, 27.0])
        resolved = resolve_exact_threshold(
            totals,
            best_boundary_value=None,
            best_boundary_gini=np.inf,
            alive_bounds=[(0.0, 1.0)],
            alive_cum_below=[np.zeros(2)],
            buf_values=buf_values,
            buf_labels=buf_labels,
        )
        assert resolved is not None
        assert resolved.threshold == lo_v
        assert resolved.gini == 0.0
        assert resolved.from_buffer

    def test_resolver_excludes_records_on_lower_bound(self):
        # A buffered array may hold records outside the alive interval;
        # one exactly on the open lower bound must not become a candidate.
        from repro.core.builder import resolve_exact_threshold

        buf_values = np.array([1.0, 1.5, 2.0])
        buf_labels = np.array([0, 0, 1])
        resolved = resolve_exact_threshold(
            np.array([2.0, 1.0]),
            best_boundary_value=None,
            best_boundary_gini=np.inf,
            alive_bounds=[(1.0, 2.0)],
            alive_cum_below=[np.array([1.0, 0.0])],
            buf_values=buf_values,
            buf_labels=buf_labels,
        )
        assert resolved is not None
        # 1.0 sits on the open lower bound: the only in-interval distinct
        # cut is after 1.5, which separates the classes exactly.
        assert resolved.threshold == 1.5
        assert resolved.gini == 0.0
