"""Tests for the serving layer (serve/engine.py, serve/batcher.py)."""

import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.io.metrics import ServingStats
from repro.eval.treegen import random_batch, random_tree
from repro.serve import (
    DeadlineExceeded,
    MicroBatcher,
    ModelRegistry,
    Overloaded,
    ServingEngine,
    StuckModel,
)


class TestServingStats:
    def test_observe_and_snapshot(self):
        s = ServingStats()
        s.count_request(3)
        s.observe_batch(10, 0.5)
        s.observe_batch(30, 1.5)
        snap = s.snapshot()
        assert snap["requests"] == 3
        assert snap["batches"] == 2
        assert snap["records"] == 40
        assert snap["mean_batch"] == 20
        assert snap["min_batch"] == 10 and snap["max_batch"] == 30
        assert snap["mean_latency_ms"] == pytest.approx(1000.0)
        assert snap["records_per_s"] == pytest.approx(20.0)
        assert snap["max_latency_s"] == pytest.approx(1.5)

    def test_empty_snapshot_has_no_nans(self):
        snap = ServingStats().snapshot()
        assert snap["mean_batch"] == 0.0
        assert snap["records_per_s"] == 0.0

    def test_rejects_negative(self):
        s = ServingStats()
        with pytest.raises(ValueError):
            s.observe_batch(-1, 0.0)
        with pytest.raises(ValueError):
            s.observe_batch(1, -0.1)
        with pytest.raises(ValueError):
            s.count_request(-2)

    def test_merge_from(self):
        a, b = ServingStats(), ServingStats()
        a.observe_batch(5, 0.1)
        b.observe_batch(15, 0.3)
        b.count_request(2)
        a.merge_from(b)
        snap = a.snapshot()
        assert snap["records"] == 20
        assert snap["requests"] == 2
        assert snap["min_batch"] == 5 and snap["max_batch"] == 15

    def test_zero_record_batch_is_a_real_minimum(self):
        # Regression: the old ``min_batch == 0`` sentinel meant a genuine
        # empty batch was indistinguishable from "never observed" and a
        # later nonzero batch would overwrite it.
        s = ServingStats()
        s.observe_batch(0, 0.001)
        s.observe_batch(25, 0.002)
        snap = s.snapshot()
        assert snap["min_batch"] == 0
        assert snap["max_batch"] == 25
        assert s.batch_observed

    def test_merge_honors_observed_flag(self):
        # Merging an empty block must not drag min_batch down to 0...
        a, b = ServingStats(), ServingStats()
        a.observe_batch(5, 0.1)
        a.merge_from(b)
        assert a.snapshot()["min_batch"] == 5
        # ...while merging a block whose true minimum IS 0 must.
        c = ServingStats()
        c.observe_batch(0, 0.1)
        a.merge_from(c)
        assert a.snapshot()["min_batch"] == 0
        # And merging into a never-observed block adopts the other side.
        d = ServingStats()
        d.merge_from(a)
        assert d.snapshot()["min_batch"] == 0
        assert d.batch_observed

    def test_snapshot_reports_latency_percentiles(self):
        s = ServingStats()
        empty = s.snapshot()
        assert empty["p50_latency_ms"] == 0.0
        for ms in (1.0, 2.0, 4.0, 8.0, 100.0):
            s.observe_batch(1, ms / 1000.0)
        snap = s.snapshot()
        assert 0.0 < snap["p50_latency_ms"] <= snap["p90_latency_ms"]
        assert snap["p90_latency_ms"] <= snap["p99_latency_ms"]
        assert snap["p99_latency_ms"] <= 1000.0 * snap["max_latency_s"] * 2

    def test_merge_folds_latency_histograms(self):
        a, b = ServingStats(), ServingStats()
        for __ in range(10):
            a.observe_batch(1, 0.001)
            b.observe_batch(1, 0.1)
        a.merge_from(b)
        assert a.latency.count == 20
        # Median sits between the two clusters after the merge.
        assert 0.001 < a.latency.quantile(0.5) < 0.1


class TestModelRegistry:
    def test_register_is_idempotent(self):
        reg = ModelRegistry()
        t = random_tree(depth=4, seed=0)
        key = reg.register(t)
        assert reg.register(t) == key
        assert len(reg) == 1
        assert key in reg
        assert reg.fingerprints() == [key]

    def test_round_tripped_tree_maps_to_same_model(self):
        from repro.core.serialize import tree_from_json, tree_to_json

        reg = ModelRegistry()
        t = random_tree(depth=4, seed=1)
        key = reg.register(t)
        assert reg.register(tree_from_json(tree_to_json(t))) == key

    def test_distinct_trees_distinct_keys(self):
        reg = ModelRegistry()
        k1 = reg.register(random_tree(depth=3, seed=2))
        k2 = reg.register(random_tree(depth=3, seed=3))
        assert k1 != k2 and len(reg) == 2

    def test_unknown_fingerprint_raises(self):
        reg = ModelRegistry()
        with pytest.raises(KeyError, match="no model registered"):
            reg.get("deadbeef")
        with pytest.raises(KeyError, match="no model registered"):
            reg.stats("deadbeef")


class TestServingEngine:
    def test_matches_tree_predictions(self):
        t = random_tree(depth=6, seed=4)
        X = random_batch(t.schema, 3000, seed=5, unseen_frac=0.05)
        engine = ServingEngine()
        key = engine.registry.register(t)
        np.testing.assert_array_equal(engine.predict(key, X), t.predict(X))
        np.testing.assert_array_equal(engine.predict_proba(key, X), t.predict_proba(X))
        np.testing.assert_array_equal(engine.apply(key, X), t.apply(X))

    def test_sharded_output_identical_to_serial(self):
        t = random_tree(depth=6, seed=6)
        X = random_batch(t.schema, 5000, seed=7)
        serial = ServingEngine()
        sharded = ServingEngine(workers=4, min_shard_rows=100)
        k1 = serial.registry.register(t)
        k2 = sharded.registry.register(t)
        assert k1 == k2
        with serial, sharded:
            np.testing.assert_array_equal(
                sharded.predict(k2, X), serial.predict(k1, X)
            )
            np.testing.assert_array_equal(
                sharded.predict_proba(k2, X), serial.predict_proba(k1, X)
            )

    def test_stats_accumulate(self):
        t = random_tree(depth=4, seed=8)
        engine = ServingEngine()
        key = engine.registry.register(t)
        X = random_batch(t.schema, 100, seed=9)
        engine.predict(key, X)
        engine.predict(key, X[:40])
        snap = engine.registry.stats(key).snapshot()
        assert snap["batches"] == 2
        assert snap["records"] == 140
        assert snap["min_batch"] == 40 and snap["max_batch"] == 100
        assert snap["busy_seconds"] > 0

    def test_empty_batch(self):
        t = random_tree(depth=4, seed=10)
        engine = ServingEngine()
        key = engine.registry.register(t)
        p = t.schema.n_attributes
        assert engine.predict(key, np.empty((0, p))).shape == (0,)
        proba = engine.predict_proba(key, np.empty((0, p)))
        assert proba.shape == (0, t.schema.n_classes)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServingEngine(workers=0)
        with pytest.raises(ValueError):
            ServingEngine(min_shard_rows=0)


class TestMicroBatcher:
    def test_single_requests_get_batched_answers(self):
        t = random_tree(depth=5, seed=11)
        X = random_batch(t.schema, 64, seed=12)
        engine = ServingEngine()
        key = engine.registry.register(t)
        expected = t.predict(X)
        with MicroBatcher(engine, key, max_batch=16, max_delay_s=0.01) as mb:
            futures = [mb.submit(row) for row in X]
            got = np.array([f.result(timeout=10) for f in futures])
        np.testing.assert_array_equal(got, expected)
        snap = engine.registry.stats(key).snapshot()
        assert snap["requests"] == 64
        # Coalescing must have produced fewer engine calls than requests.
        assert snap["batches"] < 64

    def test_predict_proba_mode(self):
        t = random_tree(depth=4, seed=13)
        X = random_batch(t.schema, 8, seed=14)
        engine = ServingEngine()
        key = engine.registry.register(t)
        with MicroBatcher(engine, key, method="predict_proba", max_batch=4) as mb:
            rows = [mb.submit(row).result(timeout=10) for row in X]
        np.testing.assert_array_equal(np.vstack(rows), t.predict_proba(X))

    def test_close_flushes_pending(self):
        t = random_tree(depth=3, seed=15)
        X = random_batch(t.schema, 3, seed=16)
        engine = ServingEngine()
        key = engine.registry.register(t)
        mb = MicroBatcher(engine, key, max_batch=1000, max_delay_s=30.0)
        futures = [mb.submit(row) for row in X]
        mb.close()  # must not leave futures pending despite the huge window
        got = np.array([f.result(timeout=1) for f in futures])
        np.testing.assert_array_equal(got, t.predict(X))

    def test_submit_after_close_raises(self):
        t = random_tree(depth=3, seed=17)
        engine = ServingEngine()
        key = engine.registry.register(t)
        mb = MicroBatcher(engine, key)
        mb.close()
        with pytest.raises(RuntimeError, match="closed"):
            mb.submit(np.zeros(t.schema.n_attributes))

    def test_engine_failure_propagates_to_futures(self):
        t = random_tree(depth=3, seed=18)
        engine = ServingEngine()
        key = engine.registry.register(t)
        with MicroBatcher(engine, key, max_batch=2, max_delay_s=1.0) as mb:
            # Mismatched row widths cannot be stacked into one batch; the
            # failure must resolve both futures, not kill the flush thread.
            f1 = mb.submit(np.zeros(t.schema.n_attributes))
            f2 = mb.submit(np.zeros(t.schema.n_attributes + 3))
            with pytest.raises(ValueError):
                f1.result(timeout=10)
            with pytest.raises(ValueError):
                f2.result(timeout=10)
            # The batcher still serves follow-up requests afterwards.
            f3 = mb.submit(np.zeros(t.schema.n_attributes))
            f4 = mb.submit(np.zeros(t.schema.n_attributes))
            assert f3.result(timeout=10) == f4.result(timeout=10)

    def test_rejects_bad_config(self):
        t = random_tree(depth=3, seed=19)
        engine = ServingEngine()
        key = engine.registry.register(t)
        with pytest.raises(ValueError, match="unknown engine method"):
            MicroBatcher(engine, key, method="nope")
        with pytest.raises(KeyError):
            MicroBatcher(engine, "missing")
        with pytest.raises(ValueError):
            MicroBatcher(engine, key, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(engine, key, max_delay_s=0.0)


class TestMicroBatcherDeadlines:
    def test_deadline_shorter_than_flush_window(self):
        # The flush thread must wake at the deadline, not the window end:
        # a 5 ms budget under a 10 s window fails fast, without an engine
        # call (the batch had no survivors).
        t = random_tree(depth=3, seed=70)
        engine = ServingEngine()
        key = engine.registry.register(t)
        with MicroBatcher(engine, key, max_delay_s=10.0) as b:
            f = b.submit(random_batch(t.schema, 1, seed=0)[0], deadline_s=0.005)
            with pytest.raises(DeadlineExceeded, match="before execution"):
                f.result(timeout=5.0)
        snap = engine.registry.stats(key).snapshot()
        assert snap["timeouts"] == 1
        assert snap["batches"] == 0  # predict was never called

    def test_all_expired_batch_skips_predict(self):
        t = random_tree(depth=3, seed=71)
        engine = ServingEngine()
        key = engine.registry.register(t)
        X = random_batch(t.schema, 3, seed=1)
        with MicroBatcher(
            engine, key, max_delay_s=10.0, default_deadline_s=0.005
        ) as b:
            futures = [b.submit(row) for row in X]
            for f in futures:
                with pytest.raises(DeadlineExceeded):
                    f.result(timeout=5.0)
        snap = engine.registry.stats(key).snapshot()
        assert snap["timeouts"] == 3
        assert snap["batches"] == 0 and snap["records"] == 0

    def test_deadline_expires_mid_execution(self):
        # The batch starts executing inside the budget but finishes past
        # it: the caller gets DeadlineExceeded, never a late answer.
        t = random_tree(depth=3, seed=72)
        stuck = StuckModel(t.compiled())
        engine = ServingEngine()
        key = engine.registry.register(stuck)
        with MicroBatcher(engine, key, max_delay_s=0.001) as b:
            f = b.submit(random_batch(t.schema, 1, seed=2)[0], deadline_s=0.2)
            assert stuck.entered.wait(5.0)  # execution began in time
            time.sleep(0.25)  # ...and the budget lapsed while stuck
            stuck.release.set()
            with pytest.raises(DeadlineExceeded, match="while its batch"):
                f.result(timeout=5.0)
        assert engine.registry.stats(key).snapshot()["timeouts"] == 1

    def test_mixed_batch_only_expired_requests_fail(self):
        t = random_tree(depth=3, seed=73)
        engine = ServingEngine()
        key = engine.registry.register(t)
        X = random_batch(t.schema, 2, seed=3)
        with MicroBatcher(engine, key, max_delay_s=0.05) as b:
            doomed = b.submit(X[0], deadline_s=0.005)
            healthy = b.submit(X[1])  # no deadline
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert healthy.result(timeout=5.0) == t.predict(X[1:2])[0]
        snap = engine.registry.stats(key).snapshot()
        assert snap["timeouts"] == 1 and snap["records"] == 1

    def test_rejects_bad_deadline_config(self):
        t = random_tree(depth=3, seed=74)
        engine = ServingEngine()
        key = engine.registry.register(t)
        with pytest.raises(ValueError):
            MicroBatcher(engine, key, default_deadline_s=0.0)
        with MicroBatcher(engine, key) as b:
            with pytest.raises(ValueError):
                b.submit(np.zeros(t.schema.n_attributes), deadline_s=-1.0)


class TestMicroBatcherAdmission:
    def test_max_pending_sheds_with_overloaded(self):
        t = random_tree(depth=3, seed=75)
        stuck = StuckModel(t.compiled())
        engine = ServingEngine()
        key = engine.registry.register(stuck)
        X = random_batch(t.schema, 4, seed=4)
        b = MicroBatcher(engine, key, max_delay_s=0.001, max_pending=2)
        try:
            first = b.submit(X[0])
            assert stuck.entered.wait(5.0)  # flush thread is now occupied
            # The queue refills behind the stuck batch...
            pending = [b.submit(X[1]), b.submit(X[2])]
            # ...and the bound sheds the next arrival immediately.
            with pytest.raises(Overloaded):
                b.submit(X[3])
            assert engine.registry.stats(key).snapshot()["shed"] == 1
            stuck.release.set()
            for f in [first, *pending]:
                f.result(timeout=5.0)
        finally:
            stuck.release.set()
            b.close()

    def test_serving_stats_new_counters_roundtrip(self):
        s = ServingStats()
        s.count_shed(2)
        s.count_timeout()
        s.count_breaker_rejection(3)
        s.count_fallback()
        s.count_shard_retry(4)
        other = ServingStats()
        other.count_shed()
        other.merge_from(s)
        snap = other.snapshot()
        assert snap["shed"] == 3
        assert snap["timeouts"] == 1
        assert snap["breaker_rejections"] == 3
        assert snap["fallbacks"] == 1
        assert snap["shard_retries"] == 4


class TestServeBenchCLI:
    def test_smoke(self, capsys):
        rc = cli_main(
            [
                "serve-bench",
                "--records", "2000",
                "--depth", "5",
                "--batch", "500",
                "--serve-workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit_identical" in out
        assert "True" in out
