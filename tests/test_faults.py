"""Tests for fault injection and retrying scans.

The contract under test: with a retry budget of at least the injector's
``max_consecutive`` bound, every builder completes under seeded fault
injection and produces exactly the tree an un-faulted build would, with
the recovery work visible in ``IOStats`` (retries, simulated backoff).
"""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.baselines.clouds import CloudsBuilder
from repro.baselines.sprint import SprintBuilder
from repro.io.errors import (
    CorruptPageError,
    RecoverableReadError,
    ScanFailedError,
    TransientReadError,
    TruncatedReadError,
)
from repro.io.faults import FaultInjector, FaultyDataset, FaultyTable, InjectedCrash
from repro.io.metrics import CostModel, IOStats
from repro.io.pager import PagedTable
from repro.io.retry import RetryingTable


def make_table(n=1000, stats=None):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 2, n).astype(np.int64)
    return (
        PagedTable(X, y, stats=stats, page_records=100, pages_per_chunk=1),
        X,
        y,
    )


class TestFaultInjector:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=0.9, corrupt_rate=0.2)
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=-0.1)

    def test_deterministic_across_runs(self):
        outcomes = []
        for _ in range(2):
            inj = FaultInjector(transient_rate=0.3, seed=42)
            table = FaultyTable(make_table()[0], inj)
            hits = []
            for start in table.chunk_starts():
                try:
                    table.read_chunk(start)
                    hits.append(None)
                except RecoverableReadError as exc:
                    hits.append((start, type(exc).__name__))
            outcomes.append(tuple(hits))
        assert outcomes[0] == outcomes[1]
        assert any(h is not None for h in outcomes[0])

    def test_fault_families(self):
        inj = FaultInjector(
            transient_rate=0.2, truncate_rate=0.2, corrupt_rate=0.2, seed=1
        )
        table = FaultyTable(make_table(4000)[0], inj)
        seen = set()
        for __ in range(4):
            for start in table.chunk_starts():
                try:
                    table.read_chunk(start)
                except (TransientReadError, TruncatedReadError, CorruptPageError) as e:
                    seen.add(type(e))
        assert seen == {TransientReadError, TruncatedReadError, CorruptPageError}
        assert inj.total_injected == sum(inj.injected.values())

    def test_max_consecutive_bounds_streak(self):
        # Even at rate 1.0, a chunk read must succeed after max_consecutive
        # failures, so retries >= max_consecutive always completes the scan.
        inj = FaultInjector(transient_rate=1.0, seed=0, max_consecutive=2)
        table = RetryingTable(FaultyTable(make_table()[0], inj), retries=2)
        chunks = list(table.scan())
        assert sum(c.stop - c.start for c in chunks) == 1000

    def test_kill_at_scan(self):
        inj = FaultInjector(kill_at_scan=1)
        table = FaultyTable(make_table()[0], inj)
        list(table.scan())  # scan 0 fine
        with pytest.raises(InjectedCrash):
            list(table.scan())


class TestRetryingTable:
    def test_retry_recovers_and_counts(self):
        stats = IOStats()
        inner, X, __ = make_table(stats=stats)
        inj = FaultInjector(transient_rate=0.5, seed=3)
        table = RetryingTable(FaultyTable(inner, inj), retries=3, backoff_ms=2.0)
        got = np.concatenate([c.X for c in table.scan()])
        np.testing.assert_array_equal(got, X)
        assert inj.total_injected > 0
        assert stats.read_retries == inj.total_injected
        # Backoff doubles per retry within a chunk; with max_consecutive=2
        # every retried chunk costs 2.0 (one retry) or 2.0+4.0 (two).
        assert stats.backoff_ms >= 2.0 * stats.read_retries
        assert CostModel().simulated_ms(stats) > CostModel().simulated_ms(
            IOStats()
        )

    def test_budget_exhaustion_raises_scan_failed(self):
        inj = FaultInjector(transient_rate=1.0, seed=0, max_consecutive=5)
        table = RetryingTable(FaultyTable(make_table()[0], inj), retries=2)
        with pytest.raises(ScanFailedError):
            list(table.scan())

    def test_zero_retries_aborts_on_first_fault(self):
        inj = FaultInjector(transient_rate=1.0, seed=0)
        table = RetryingTable(FaultyTable(make_table()[0], inj), retries=0)
        with pytest.raises(ScanFailedError):
            list(table.scan())

    def test_crash_is_not_retried(self):
        inj = FaultInjector(kill_at_scan=0)
        table = RetryingTable(FaultyTable(make_table()[0], inj), retries=5)
        with pytest.raises(InjectedCrash):
            list(table.scan())

    def test_no_faults_means_no_retries(self):
        stats = IOStats()
        inner, X, __ = make_table(stats=stats)
        table = RetryingTable(inner, retries=3)
        got = np.concatenate([c.X for c in table.scan()])
        np.testing.assert_array_equal(got, X)
        assert stats.read_retries == 0
        assert stats.backoff_ms == 0.0

    def test_metadata_delegated(self):
        inner, __, __ = make_table()
        table = RetryingTable(inner)
        assert table.n_records == inner.n_records
        assert table.n_pages == inner.n_pages


@pytest.mark.parametrize(
    "builder_cls",
    [CMPSBuilder, CMPBBuilder, CMPBuilder, CloudsBuilder, SprintBuilder],
)
class TestBuildersUnderInjection:
    def test_build_completes_with_identical_tree(self, builder_cls, f2_small):
        # Small pages so each scan covers many chunks (chunk = page_records
        # * pages_per_chunk) and the <= 0.1/chunk rate actually fires.
        cfg = BuilderConfig(
            n_intervals=16, max_depth=5, min_records=30, page_records=10
        )
        clean = builder_cls(cfg).build(f2_small)
        inj = FaultInjector(
            transient_rate=0.05, truncate_rate=0.03, corrupt_rate=0.02, seed=9
        )
        faulted = builder_cls(cfg).build(FaultyDataset(f2_small, inj))
        assert tree_to_json(faulted.tree) == tree_to_json(clean.tree)
        assert inj.total_injected > 0
        assert faulted.stats.io.read_retries == inj.total_injected
        assert faulted.stats.io.backoff_ms > 0.0
        # Failed attempts still touched pages: the faulted run reads at
        # least as much as the clean one, with the same scan count.
        assert faulted.stats.io.scans == clean.stats.io.scans
        assert faulted.stats.io.pages_read >= clean.stats.io.pages_read

    def test_retries_disabled_fails_fast(self, builder_cls, f2_small):
        cfg = BuilderConfig(
            n_intervals=16,
            max_depth=5,
            min_records=30,
            page_records=10,
            scan_retries=0,
        )
        inj = FaultInjector(transient_rate=0.5, seed=9)
        with pytest.raises(ScanFailedError):
            builder_cls(cfg).build(FaultyDataset(f2_small, inj))
