"""Fuzzer self-tests: corpus round-tripping, ddmin shrinking, and a
mutation-style check that an injected builder fault is actually detected
and shrunk — a fuzzer that can't catch a planted bug is decoration."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.eval.treegen import adversarial_dataset
from repro.verify.fuzz import (
    CORPUS_FORMAT,
    FailureCase,
    load_case,
    replay_case,
    run_fuzz,
    save_case,
    shrink_case,
)

FAST_CONFIG = BuilderConfig(
    n_intervals=8, max_depth=4, min_records=20, reservoir_capacity=2000
)


def small_case(tmp_path):
    ds = adversarial_dataset("ties", n=40, seed=1)
    attrs = [
        {"name": a.name, "kind": a.kind.value, "categories": list(a.categories)}
        for a in ds.schema.attributes
    ]
    return FailureCase(
        name="unit",
        description="round-trip fixture",
        profile="ties",
        seed=1,
        schema_attrs=attrs,
        class_labels=list(ds.schema.class_labels),
        X=[[float(v) for v in row] for row in ds.X],
        y=[int(v) for v in ds.y],
        builders=["CMP-S"],
        workers=[],
        metamorphic_checks=[],
    ), ds


class TestCorpusRoundTrip:
    def test_save_load_bit_identical(self, tmp_path):
        case, ds = small_case(tmp_path)
        path = tmp_path / "unit.json"
        save_case(case, str(path))
        loaded = load_case(str(path))
        assert loaded == case
        rebuilt = loaded.dataset()
        # Exact float round-trip, not approximate: replay must rebuild
        # the bit-identical dataset.
        assert np.array_equal(rebuilt.X, ds.X)
        assert np.array_equal(rebuilt.y, ds.y)
        assert rebuilt.schema == ds.schema

    def test_unknown_format_rejected(self, tmp_path):
        case, __ = small_case(tmp_path)
        case.format = "something-else"
        path = tmp_path / "bad.json"
        save_case(case, str(path))
        with pytest.raises(ValueError, match="unknown corpus format"):
            load_case(str(path))

    def test_config_overrides_apply(self, tmp_path):
        case, __ = small_case(tmp_path)
        case.config_overrides = {"n_intervals": 8, "max_depth": 4}
        cfg = case.config()
        assert cfg.n_intervals == 8
        assert cfg.max_depth == 4


class TestShrinkCase:
    def test_marker_row_is_isolated(self, rng):
        # The predicate fails iff the planted marker row survives: ddmin
        # must strip almost everything else away.
        n = 160
        X = np.column_stack([rng.normal(size=n) for _ in range(4)])
        y = rng.integers(0, 2, n).astype(np.int64)
        X[37, 0] = 777.0
        schema = Schema(tuple(continuous(f"a{i}") for i in range(4)), ("n", "p"))
        ds = Dataset(X, y, schema)

        fails = lambda d: bool(np.any(d.X == 777.0))
        shrunk = shrink_case(ds, fails, max_evals=80)
        assert fails(shrunk)
        assert shrunk.n_records <= 8
        # Attribute shrinking keeps two continuous columns (CMP-B floor).
        assert shrunk.schema.n_attributes == 2

    def test_never_returns_passing_dataset(self, rng):
        X = rng.normal(size=(64, 2))
        y = rng.integers(0, 2, 64).astype(np.int64)
        ds = Dataset(
            X, y, Schema((continuous("a"), continuous("b")), ("n", "p"))
        )
        shrunk = shrink_case(ds, lambda d: True, max_evals=30)
        assert shrunk.n_records >= 1


class TestMutationSelfTest:
    """Plant a real bug in CMP-S's exact-resolution step and require the
    fuzzer to (a) flag it and (b) shrink the witness dataset."""

    def test_injected_fault_is_found_and_shrunk(self, monkeypatch):
        import repro.core.cmp_s as cmp_s_mod
        from repro.core.intervals import select_alive_intervals

        def corrupted(analyses, max_alive):
            # Classic inverted-comparator bug: the *worst*-scoring
            # attribute wins.  The resulting split-quality gap is not
            # covered by any footnote-1 slack, so the differential gap
            # check must fire.
            viable = [a for a in analyses if a.splittable]
            if not viable:
                return None
            winner = max(viable, key=lambda a: (a.score, a.attr))
            winner.alive = select_alive_intervals(winner, max_alive)
            return winner

        with monkeypatch.context() as mp:
            mp.setattr(cmp_s_mod, "choose_split_attribute", corrupted)
            cases, runs = run_fuzz(
                FAST_CONFIG,
                profiles=("ties", "mixed"),
                seeds=range(2),
                n=150,
                builders=("CMP-S",),
                workers=(),
                metamorphic_checks=None,
                max_shrink_evals=40,
            )
            assert runs == 4
            assert cases, "planted fault escaped the fuzzer"
            case = cases[0]
            assert case.findings
            # Shrinking made real progress on the witness.
            assert len(case.y) < 150
            # The stored case still reproduces while the fault is live.
            assert replay_case(case)

        # Fault removed: the same corpus case must replay clean, proving
        # the capture is about the bug, not about the harness.
        assert replay_case(case) == []


@pytest.mark.fuzz
class TestFuzzSweep:
    def test_clean_sweep_over_all_profiles(self):
        cfg = BuilderConfig(
            n_intervals=16, max_depth=6, min_records=25, reservoir_capacity=5000
        )
        cases, runs = run_fuzz(cfg, seeds=range(2), n=250)
        assert runs >= 12
        assert cases == [], "\n".join(f for c in cases for f in c.findings)
