"""Examples are part of the public surface: they must at least run.

The two quick ones execute end-to-end in a subprocess; the heavier ones
are compile-checked so a stale import breaks the suite immediately.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamplesRun:
    def test_model_persistence(self):
        out = run_example("model_persistence.py")
        assert "identical predictions" in out
        assert "digraph" in out

    def test_loan_linear_splits(self):
        out = run_example("loan_linear_splits.py")
        assert "linear split" in out
        assert "CMP tree" in out

    def test_fault_tolerant_training(self):
        out = run_example("fault_tolerant_training.py")
        assert "identical tree" in out
        assert "bit-identical tree" in out
        assert "checksum mismatch" in out


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [p.name for p in sorted(EXAMPLES.glob("*.py"))],
    )
    def test_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
        assert '"""' in source  # every example carries a docstring
        assert "def main()" in source
