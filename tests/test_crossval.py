"""Tests for the cross-validation harness."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.eval.crossval import CrossValResult, cross_validate, kfold_indices


class TestKfoldIndices:
    def test_partition_properties(self, rng):
        folds = kfold_indices(103, 5, rng)
        assert len(folds) == 5
        all_test = np.concatenate([test for __, test in folds])
        # Every record appears in exactly one test fold.
        assert sorted(all_test) == list(range(103))
        for train, test in folds:
            assert len(train) + len(test) == 103
            assert not set(train) & set(test)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError, match="per fold"):
            kfold_indices(3, 5, rng)


class TestCrossValidate:
    def test_separable_data_scores_high(self, two_blob, fast_config):
        result = cross_validate(
            lambda: SprintBuilder(fast_config), two_blob, k=4, seed=1
        )
        assert result.n_folds == 4
        assert result.mean > 0.97
        assert result.std < 0.05

    def test_cmp_close_to_exact(self, f2_small, fast_config):
        cmp_cv = cross_validate(lambda: CMPSBuilder(fast_config), f2_small, k=3)
        exact_cv = cross_validate(lambda: SprintBuilder(fast_config), f2_small, k=3)
        assert cmp_cv.mean > exact_cv.mean - 0.04

    def test_result_stats(self):
        r = CrossValResult((0.8, 0.9, 1.0))
        assert r.mean == pytest.approx(0.9)
        assert r.std == pytest.approx(np.std([0.8, 0.9, 1.0]))

    def test_rejects_non_builder(self, two_blob):
        with pytest.raises(TypeError, match="TreeBuilder"):
            cross_validate(lambda: object(), two_blob, k=2)
