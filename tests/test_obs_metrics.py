"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


class TestLogBuckets:
    def test_geometric_progression(self):
        assert log_buckets(1.0, 8.0) == (1.0, 2.0, 4.0, 8.0)

    def test_covers_hi(self):
        bounds = log_buckets(1e-4, 100.0)
        assert bounds[-1] >= 100.0
        assert bounds == LATENCY_BUCKETS_S

    def test_custom_factor(self):
        bounds = log_buckets(1.0, 100.0, factor=10.0)
        assert bounds == (1.0, 10.0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, factor=1.0)


class TestCounter:
    def test_inc(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_thread_safe(self):
        c = Counter("c_total")

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogram:
    def test_observe_lands_in_le_bucket(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 9.0):
            h.observe(v)
        # le semantics: 1.0 -> first bucket, 4.0 -> third, 9.0 -> +Inf.
        assert h.bucket_counts() == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(16.0)

    def test_cumulative_buckets(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(bounds=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all in (10, 20]
        # Median rank 5/10 -> halfway through the second bucket.
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(1.0) == pytest.approx(20.0)

    def test_quantile_first_bucket_interpolates_from_zero(self):
        h = Histogram(bounds=(8.0, 16.0))
        for _ in range(4):
            h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(4.0)

    def test_quantile_overflow_returns_largest_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_percentiles_shorthand(self):
        h = Histogram(bounds=(10.0,))
        h.observe(5.0)
        p = h.percentiles(50, 90, 99)
        assert set(p) == {"p50", "p90", "p99"}

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, math.inf))

    def test_merge_matches_direct_observation(self):
        # The histogram-delta idiom: worker-private copies folded together
        # must equal one histogram that saw every observation.
        bounds = log_buckets(1e-3, 10.0)
        direct = Histogram(bounds=bounds)
        parts = [Histogram(bounds=bounds) for _ in range(3)]
        values = [0.001 * (i + 1) ** 2 for i in range(60)]
        for i, v in enumerate(values):
            direct.observe(v)
            parts[i % 3].observe(v)
        merged = Histogram(bounds=bounds)
        for p in parts:
            merged.merge_from(p)
        assert merged.bucket_counts() == direct.bucket_counts()
        assert merged.sum == pytest.approx(direct.sum)
        assert merged.quantile(0.9) == pytest.approx(direct.quantile(0.9))

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge_from(Histogram(bounds=(2.0,)))

    def test_concurrent_observe(self):
        h = Histogram(bounds=(0.5,))

        def observe():
            for _ in range(5_000):
                h.observe(0.25)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 20_000
        assert h.bucket_counts()[0] == 20_000


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", {"k": "v"})
        b = reg.counter("x_total", labels={"k": "v"})
        assert a is b
        assert len(reg) == 1

    def test_distinct_labels_distinct_members(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"k": "1"})
        b = reg.counter("x_total", labels={"k": "2"})
        assert a is not b
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_histogram_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("h", bounds=(1.0, 4.0))

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")
        with pytest.raises(ValueError):
            reg.counter("1bad")

    def test_help_from_first_registration(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "first help", {"k": "1"})
        reg.counter("x_total", "second help", {"k": "2"})
        families = {name: help for name, _, help, _ in reg.collect()}
        assert families["x_total"] == "first help"

    def test_collect_groups_by_family(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"k": "1"})
        reg.counter("x_total", labels={"k": "2"})
        reg.gauge("g")
        fams = {name: (kind, len(members)) for name, kind, _, members in reg.collect()}
        assert fams == {"x_total": ("counter", 2), "g": ("gauge", 1)}

    def test_to_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c help").inc(2)
        h = reg.histogram("h_seconds", bounds=(1.0,))
        h.observe(0.5)
        d = reg.to_dict()
        assert d["c_total"]["type"] == "counter"
        assert d["c_total"]["values"][0]["value"] == 2.0
        entry = d["h_seconds"]["values"][0]
        assert entry["count"] == 1
        assert entry["buckets"][-1]["le"] == "+Inf"
        assert "p50" in entry and "p99" in entry
