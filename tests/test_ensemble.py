"""Shared-scan ensembles: bagging bit-identity, boosting determinism,
packed-forest serving, and the two bugfix regressions that shipped with
them (empty-leaf majority fallback, stratified cross-validation)."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.core.compiled import CompiledForest
from repro.core.tree import DecisionTree, Node
from repro.core.splits import NumericSplit
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.ensemble import (
    BaggedForestBuilder,
    Forest,
    HistGradientBoostingBuilder,
    bootstrap_indices,
    bootstrap_weights,
    member_seed,
)
from repro.eval.crossval import (
    cross_validate,
    kfold_indices,
    stratified_kfold_indices,
)
from repro.eval.treegen import adversarial_dataset
from repro.serve.engine import ModelRegistry
from repro.verify.differential import tree_signature
from repro.verify.forest import forest_signatures, run_forest_differential


ENSEMBLE_CONFIG = BuilderConfig(
    n_intervals=16,
    max_depth=4,
    min_records=10,
    reservoir_capacity=4_000,
    page_records=64,
    seed=29,
)


@pytest.fixture(scope="module")
def small_mixed() -> Dataset:
    """2k records, continuous + categorical signal, three classes."""
    rng = np.random.default_rng(5)
    n = 2_000
    X = np.column_stack(
        [
            rng.normal(0.0, 1.0, n),
            rng.uniform(-2.0, 2.0, n),
            rng.integers(0, 4, n).astype(float),
        ]
    )
    y = ((X[:, 0] > 0).astype(np.int64) + (X[:, 2] >= 2)).astype(np.int64)
    schema = Schema(
        (continuous("a"), continuous("b"), categorical("c", ("w", "x", "y", "z"))),
        ("c0", "c1", "c2"),
    )
    return Dataset(X, y, schema)


class TestBootstrap:
    def test_weights_match_index_multiplicity(self):
        idx = bootstrap_indices(3, 1, 500)
        w = bootstrap_weights(3, 1, 500)
        assert idx.shape == (500,)
        np.testing.assert_array_equal(w, np.bincount(idx, minlength=500))
        assert w.sum() == 500

    def test_members_draw_independent_samples(self):
        a = bootstrap_indices(3, 0, 500)
        b = bootstrap_indices(3, 1, 500)
        assert not np.array_equal(a, b)
        assert member_seed(3, 0) != member_seed(3, 1)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            bootstrap_indices(9, 2, 100), bootstrap_indices(9, 2, 100)
        )


class TestBaggedForestBuilder:
    def test_members_bit_identical_to_solo_builds(self, small_mixed):
        result = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=3).build(small_mixed)
        assert result.forest.n_trees == 3
        assert result.stats.ensemble_members == 3
        n = small_mixed.n_records
        for t, member in enumerate(result.forest.members):
            boot = small_mixed.take(
                np.sort(bootstrap_indices(ENSEMBLE_CONFIG.seed, t, n))
            )
            solo_cfg = ENSEMBLE_CONFIG.with_(
                seed=member_seed(ENSEMBLE_CONFIG.seed, t)
            )
            solo = CMPSBuilder(solo_cfg).build(boot).tree
            assert tree_signature(member) == tree_signature(solo), f"member {t}"

    def test_one_scan_per_level_not_per_tree(self, small_mixed):
        result = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=4).build(small_mixed)
        # Two bootstrap scans plus one scan per shared level — far fewer
        # than 4 independent builds would issue.
        assert result.stats.shared_level_scans >= 1
        assert result.stats.io.scans <= 2 + result.stats.shared_level_scans

    def test_buffer_overflow_rescan_keeps_parity(self, small_mixed):
        cfg = ENSEMBLE_CONFIG.with_(buffer_budget_bytes=2_048)
        result = BaggedForestBuilder(cfg, n_trees=2).build(small_mixed)
        assert result.stats.buffer_overflow_rescans > 0
        n = small_mixed.n_records
        for t, member in enumerate(result.forest.members):
            boot = small_mixed.take(np.sort(bootstrap_indices(cfg.seed, t, n)))
            solo = CMPSBuilder(
                cfg.with_(seed=member_seed(cfg.seed, t))
            ).build(boot).tree
            assert tree_signature(member) == tree_signature(solo)

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 4), ("process", 4)]
    )
    def test_parallel_backends_bit_identical(self, small_mixed, backend, workers):
        serial = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=3).build(small_mixed)
        parallel = BaggedForestBuilder(
            ENSEMBLE_CONFIG.with_(scan_backend=backend, scan_workers=workers),
            n_trees=3,
        ).build(small_mixed)
        assert forest_signatures(parallel.forest) == forest_signatures(
            serial.forest
        )

    def test_soft_vote_equals_member_average(self, small_mixed):
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=3).build(
            small_mixed
        ).forest
        X = small_mixed.X[:500]
        acc = np.zeros((len(X), small_mixed.n_classes))
        for member in forest.members:
            acc += member.compiled().predict_proba(X)
        np.testing.assert_array_equal(forest.predict_proba(X), acc / 3)
        np.testing.assert_array_equal(
            forest.predict(X), np.argmax(acc, axis=1)
        )

    def test_mdl_prune_applies_per_member(self, small_mixed):
        cfg = ENSEMBLE_CONFIG.with_(prune="mdl")
        result = BaggedForestBuilder(cfg, n_trees=2).build(small_mixed)
        n = small_mixed.n_records
        for t, member in enumerate(result.forest.members):
            boot = small_mixed.take(np.sort(bootstrap_indices(cfg.seed, t, n)))
            solo = CMPSBuilder(
                cfg.with_(seed=member_seed(cfg.seed, t))
            ).build(boot).tree
            assert tree_signature(member) == tree_signature(solo)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=0)
        with pytest.raises(ValueError):
            BaggedForestBuilder(
                ENSEMBLE_CONFIG.with_(checkpoint_path="x.ckpt"), n_trees=2
            )


class TestHistGradientBoosting:
    def test_training_beats_priors_and_is_deterministic(self, small_mixed):
        builder = HistGradientBoostingBuilder(
            ENSEMBLE_CONFIG, n_iterations=4, learning_rate=0.3
        )
        result = builder.build(small_mixed)
        forest = result.forest
        assert forest.n_trees == 4 * small_mixed.n_classes
        acc = float(np.mean(forest.predict(small_mixed.X) == small_mixed.y))
        prior = float(np.max(np.bincount(small_mixed.y)) / small_mixed.n_records)
        assert acc > prior + 0.1
        again = HistGradientBoostingBuilder(
            ENSEMBLE_CONFIG, n_iterations=4, learning_rate=0.3
        ).build(small_mixed)
        assert (
            again.forest.compiled().fingerprint
            == forest.compiled().fingerprint
        )

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 4), ("process", 4)]
    )
    def test_parallel_backends_reproduce_fingerprint(
        self, small_mixed, backend, workers
    ):
        ref = HistGradientBoostingBuilder(ENSEMBLE_CONFIG, n_iterations=2).build(
            small_mixed
        )
        par = HistGradientBoostingBuilder(
            ENSEMBLE_CONFIG.with_(scan_backend=backend, scan_workers=workers),
            n_iterations=2,
        ).build(small_mixed)
        assert (
            par.forest.compiled().fingerprint
            == ref.forest.compiled().fingerprint
        )

    def test_proba_rows_sum_to_one(self, small_mixed):
        forest = HistGradientBoostingBuilder(
            ENSEMBLE_CONFIG, n_iterations=2
        ).build(small_mixed).forest
        proba = forest.predict_proba(small_mixed.X[:200])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(proba >= 0.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            HistGradientBoostingBuilder(ENSEMBLE_CONFIG, n_iterations=0)
        with pytest.raises(ValueError):
            HistGradientBoostingBuilder(ENSEMBLE_CONFIG, learning_rate=0.0)


class TestPackedForestServing:
    def test_packed_scoring_matches_member_loop(self, small_mixed):
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=3).build(
            small_mixed
        ).forest
        cf = forest.compiled()
        assert isinstance(cf, CompiledForest)
        X = small_mixed.X[:800]
        acc = np.tile(cf.base, (len(X), 1))
        for t, member in enumerate(cf.members):
            acc += cf.values[cf.leaf_row[cf.tree_offsets[t] + member.route(X)]]
        np.testing.assert_array_equal(cf.decision_values(X), acc)

    def test_numpy_fallback_bit_identical(self, small_mixed, tmp_path):
        """The CMP_NO_NATIVE=1 path must score byte-for-byte like native."""
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=2).build(
            small_mixed
        ).forest
        cf = forest.compiled()
        X = small_mixed.X[:300]
        native = cf.decision_values(X)
        xp, np_ = tmp_path / "X.npy", tmp_path / "native.npy"
        np.save(xp, X)
        np.save(np_, native)
        # Rebuild the same forest in a subprocess with the native kernels
        # disabled and compare raw decision values bitwise.
        script = f"""
import numpy as np
from repro.config import BuilderConfig
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.ensemble import BaggedForestBuilder

rng = np.random.default_rng(5)
n = 2_000
X = np.column_stack([
    rng.normal(0.0, 1.0, n),
    rng.uniform(-2.0, 2.0, n),
    rng.integers(0, 4, n).astype(float),
])
y = ((X[:, 0] > 0).astype(np.int64) + (X[:, 2] >= 2)).astype(np.int64)
schema = Schema(
    (continuous("a"), continuous("b"), categorical("c", ("w", "x", "y", "z"))),
    ("c0", "c1", "c2"),
)
ds = Dataset(X, y, schema)
cfg = BuilderConfig(n_intervals=16, max_depth=4, min_records=10,
                    reservoir_capacity=4_000, page_records=64, seed=29)
cf = BaggedForestBuilder(cfg, n_trees=2).build(ds).forest.compiled()
Xq = np.load({str(xp)!r})
native = np.load({str(np_)!r})
from repro.core import native as native_mod
assert native_mod.forest_kernel() is None, "CMP_NO_NATIVE not honoured"
assert np.array_equal(cf.decision_values(Xq), native)
print("FALLBACK_OK")
"""
        env = dict(os.environ, CMP_NO_NATIVE="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "FALLBACK_OK" in proc.stdout

    def test_apply_returns_member_leaves(self, small_mixed):
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=3).build(
            small_mixed
        ).forest
        leaves = forest.apply(small_mixed.X[:100])
        assert leaves.shape == (100, 3)
        for t, member in enumerate(forest.members):
            np.testing.assert_array_equal(
                leaves[:, t], member.apply(small_mixed.X[:100])
            )

    def test_registry_serves_forest_under_full_fingerprint(self, small_mixed):
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=2).build(
            small_mixed
        ).forest
        registry = ModelRegistry()
        fp = registry.register(forest)
        assert len(fp) == 64
        assert fp == forest.compiled().fingerprint
        X = small_mixed.X[:50]
        np.testing.assert_array_equal(
            registry.get(fp).predict(X), forest.predict(X)
        )
        # Historical truncated keys (and any unique >=8-char prefix) still
        # resolve to the packed forest.
        assert registry.resolve(fp[:16]) == fp
        np.testing.assert_array_equal(
            registry.get(fp[:16]).predict(X), forest.predict(X)
        )

    def test_forest_requires_members(self):
        with pytest.raises(ValueError):
            Forest([])


class TestForestDifferential:
    def test_clean_on_adversarial_dataset(self):
        ds = adversarial_dataset("mixed", n=250, seed=4)
        cfg = BuilderConfig(
            n_intervals=16, max_depth=4, min_records=15, page_records=64, seed=13
        )
        report = run_forest_differential(
            ds, cfg, n_trees=2, n_iterations=2, matrix=(("process", 4),)
        )
        errors = [f for f in report.findings if f.severity == "error"]
        assert not errors, "\n".join(str(f) for f in errors)
        assert report.ok
        assert len(report.member_stats) == 2
        assert all(g.n_internal >= 0 for g in report.member_stats)

    def test_signatures_detect_member_corruption(self, small_mixed):
        forest = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=2).build(
            small_mixed
        ).forest
        ref = forest_signatures(forest)
        tampered = BaggedForestBuilder(ENSEMBLE_CONFIG, n_trees=2).build(
            small_mixed
        ).forest
        node = next(
            n for n in tampered.members[0].iter_nodes() if not n.is_leaf
        )
        assert isinstance(node.split, NumericSplit) or node.split is not None
        if isinstance(node.split, NumericSplit):
            node.split = NumericSplit(
                node.split.attr, node.split.threshold + 1e9, node.split.n_candidates
            )
        else:
            node.make_leaf()
        assert forest_signatures(tampered) != ref


class TestMajorityFallbackRegression:
    """An all-zero-count node must defer to its parent distribution
    instead of silently predicting class 0 (the old argmax-of-zeros bug)."""

    @staticmethod
    def _tree_with_empty_leaf():
        counts = np.array([2.0, 9.0])
        root = Node(0, 0, counts, split=NumericSplit(0, 0.5, 4))
        root.left = Node(1, 1, np.zeros(2))  # no training record landed here
        root.right = Node(2, 1, counts.copy())
        schema = Schema((continuous("x"),), ("a", "b"))
        return DecisionTree(root, schema)

    def test_empty_leaf_predicts_parent_majority(self):
        tree = self._tree_with_empty_leaf()
        empty = tree.root.left
        assert empty.class_counts.sum() == 0
        np.testing.assert_array_equal(
            empty.effective_counts, tree.root.class_counts
        )
        assert empty.majority_class == 1  # parent majority, not argmax(0)=0
        # The routed prediction agrees with the node-level fallback.
        assert tree.predict(np.array([[0.0]]))[0] == 1

    def test_compiled_tree_matches_fallback(self):
        tree = self._tree_with_empty_leaf()
        compiled = tree.compiled()
        X = np.array([[0.0], [1.0]])
        np.testing.assert_array_equal(compiled.predict(X), tree.predict(X))
        # Probabilities come from effective counts, so the empty leaf's row
        # is the parent's distribution rather than NaN or [1, 0].
        proba = compiled.predict_proba(X)
        np.testing.assert_allclose(proba[0], [2 / 11, 9 / 11])

    def test_all_empty_path_stays_deterministic(self):
        root = Node(0, 0, np.zeros(3))
        tree = DecisionTree(root, Schema((continuous("x"),), ("a", "b", "c")))
        assert tree.root.majority_class == 0  # nothing to fall back to


class TestStratifiedCrossValRegression:
    """Unstratified folds can starve a fold of a rare class entirely;
    stratified folds (the new default) must never do that."""

    def _rare_class_labels(self):
        y = np.zeros(200, dtype=np.int64)
        y[:10] = 1  # 5% minority, adversarially clustered at the front
        return y

    def test_every_fold_sees_the_rare_class(self):
        y = self._rare_class_labels()
        rng = np.random.default_rng(0)
        for train, test in stratified_kfold_indices(y, 5, rng):
            assert np.sum(y[test] == 1) == 2  # 10 minority / 5 folds
            assert np.sum(y[train] == 1) == 8

    def test_partition_properties_hold(self):
        y = self._rare_class_labels()
        rng = np.random.default_rng(3)
        folds = stratified_kfold_indices(y, 4, rng)
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(200))
        for train, test in folds:
            assert len(train) + len(test) == 200
            assert not set(train.tolist()) & set(test.tolist())

    def test_cross_validate_stratifies_by_default(self, two_blob, fast_config):
        result = cross_validate(
            lambda: CMPSBuilder(fast_config), two_blob, k=4, seed=1
        )
        assert result.n_folds == 4
        assert result.mean > 0.9

    def test_unstratified_opt_out_still_works(self, two_blob, fast_config):
        result = cross_validate(
            lambda: CMPSBuilder(fast_config),
            two_blob,
            k=3,
            seed=2,
            stratify=False,
        )
        assert result.n_folds == 3

    def test_plain_kfold_unchanged(self):
        rng = np.random.default_rng(1)
        folds = kfold_indices(50, 5, rng)
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(50))
