"""Coverage for the remaining CLI subcommands at tiny scale."""

import pytest

from repro.cli import main

FAST = ["--intervals", "12", "--max-depth", "4"]


class TestCliSubcommands:
    def test_table1(self, capsys):
        code = main(["table1", "--records", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Letter" in out and "Function 7" in out

    @pytest.mark.parametrize("cmd,expected", [
        ("fig14", "CMP-S"),
        ("fig16", "CLOUDS"),
    ])
    def test_sweeps(self, capsys, cmd, expected):
        code = main([cmd, "--sizes", "1500"] + FAST)
        assert code == 0
        assert expected in capsys.readouterr().out

    def test_fig15_defaults_to_f7(self, capsys):
        code = main(["fig15", "--sizes", "1500"] + FAST)
        assert code == 0
        assert "CMP-B" in capsys.readouterr().out

    def test_fig17_function_override(self, capsys):
        code = main(["fig17", "--sizes", "1500", "--function", "F5"] + FAST)
        assert code == 0
        assert "RainForest" in capsys.readouterr().out

    def test_fig19(self, capsys):
        code = main(["fig19", "--sizes", "1500"] + FAST)
        assert code == 0
        assert "SPRINT" in capsys.readouterr().out
