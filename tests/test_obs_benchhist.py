"""Tests for repro.obs.benchhist: trajectory folding + regression gate.

Covers the full loop CI runs: flatten heterogeneous bench artifacts,
append to a versioned history, gate the newest run against the rolling
median baseline, and the ``cmp-repro bench-history`` exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.benchhist import (
    HISTORY_VERSION,
    append_run,
    check_regressions,
    flatten_metrics,
    load_history,
    metric_direction,
    new_history,
    save_history,
    summarize_history,
)


def _artifact(tmp_path, name, payload):
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(payload))
    return str(path)


def _scan_payload(wall=1.0, rps=5000.0):
    return {
        "benchmark": "scan_parallel",
        "records": 600000,
        "timings": {"wall_seconds": wall, "records_per_s": rps},
    }


def _grow(history, tmp_path, n, run_prefix="r", **payload_kwargs):
    """Append n runs built from identical artifacts."""
    for i in range(n):
        path = _artifact(
            tmp_path, f"BENCH_scan_{run_prefix}{i}", _scan_payload(**payload_kwargs)
        )
        append_run(history, [path], run_id=f"{run_prefix}{i}", timestamp=float(i))
    return history


class TestFlatten:
    def test_nested_paths_and_lists(self):
        out = flatten_metrics(
            {"a": {"b": 1, "c": [2.5, {"d": 3}]}, "top": 4}
        )
        assert out == {"a.b": 1.0, "a.c.0": 2.5, "a.c.1.d": 3.0, "top": 4.0}

    def test_booleans_excluded(self):
        assert flatten_metrics({"bit_identical": True, "n": 1}) == {"n": 1.0}

    def test_non_finite_excluded(self):
        out = flatten_metrics(
            {"nan": float("nan"), "inf": float("inf"), "ok": 0.5}
        )
        assert out == {"ok": 0.5}

    def test_strings_ignored(self):
        assert flatten_metrics({"python": "3.12", "x": 2}) == {"x": 2.0}


class TestDirection:
    @pytest.mark.parametrize(
        "path",
        [
            "timings.wall_seconds",
            "saturated_p99_ms",
            "builders.CMP.on_wall_seconds",
            "overhead_pct",
            "uncontended_p99_ms",
            "peak_bytes",
        ],
    )
    def test_lower_is_better(self, path):
        assert metric_direction(path) == "lower"

    @pytest.mark.parametrize(
        "path",
        ["timings.records_per_s", "speedup", "accuracy", "slo.compliance"],
    )
    def test_higher_is_better(self, path):
        assert metric_direction(path) == "higher"

    @pytest.mark.parametrize("path", ["records", "config.seed", "shed"])
    def test_directionless_is_ungated(self, path):
        assert metric_direction(path) is None

    def test_first_match_wins(self):
        # "seconds" (lower) appears before any higher-is-better pattern
        # would match: a path carrying both resolves to the first ladder.
        assert metric_direction("speedup_seconds") == "lower"


class TestHistoryIO:
    def test_append_save_load_round_trip(self, tmp_path):
        history = new_history()
        path = _artifact(tmp_path, "BENCH_scan", _scan_payload())
        entry = append_run(history, [path], run_id="abc")
        assert entry["run_id"] == "abc"
        metrics = entry["benchmarks"]["scan_parallel"]["metrics"]
        assert metrics["timings.wall_seconds"] == 1.0
        hist_path = tmp_path / "BENCH_history.json"
        save_history(str(hist_path), history)
        assert not (tmp_path / "BENCH_history.json.tmp").exists()
        assert load_history(str(hist_path)) == history

    def test_missing_file_is_empty_history(self, tmp_path):
        history = load_history(str(tmp_path / "nope.json"))
        assert history == {"version": HISTORY_VERSION, "runs": []}

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "runs": []}))
        with pytest.raises(ValueError, match="version"):
            load_history(str(path))

    def test_runs_must_be_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": HISTORY_VERSION, "runs": 3}))
        with pytest.raises(ValueError, match="runs"):
            load_history(str(path))

    def test_empty_artifact_list_raises(self):
        with pytest.raises(ValueError, match="no bench artifacts"):
            append_run(new_history(), [])

    def test_non_object_artifact_raises(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            append_run(new_history(), [str(path)])

    def test_max_runs_truncates_oldest(self, tmp_path):
        history = _grow(new_history(), tmp_path, 3)
        path = _artifact(tmp_path, "BENCH_scan_last", _scan_payload())
        append_run(history, [path], run_id="last", max_runs=2)
        assert [r["run_id"] for r in history["runs"]] == ["r2", "last"]

    def test_fallback_name_is_file_stem(self, tmp_path):
        path = _artifact(tmp_path, "BENCH_mystery", {"x_seconds": 1.0})
        entry = append_run(new_history(), [path])
        assert list(entry["benchmarks"]) == ["BENCH_mystery"]


class TestRegressionGate:
    def test_steady_trajectory_is_clean(self, tmp_path):
        history = _grow(new_history(), tmp_path, 5)
        assert check_regressions(history) == []

    def test_min_runs_settling_period(self, tmp_path):
        # 3 prior runs needed: with only 2, even a 10x jump is not gated.
        history = _grow(new_history(), tmp_path, 2)
        path = _artifact(tmp_path, "BENCH_scan_jump", _scan_payload(wall=10.0))
        append_run(history, [path], run_id="jump")
        assert check_regressions(history, min_runs=3) == []

    def test_lower_direction_flags_rise(self, tmp_path):
        history = _grow(new_history(), tmp_path, 4)
        path = _artifact(tmp_path, "BENCH_scan_slow", _scan_payload(wall=2.0))
        append_run(history, [path], run_id="slow")
        regs = check_regressions(history, tolerance=0.25)
        metrics = {r.metric for r in regs}
        assert "timings.wall_seconds" in metrics
        reg = next(r for r in regs if r.metric == "timings.wall_seconds")
        assert reg.direction == "lower"
        assert reg.baseline == pytest.approx(1.0)
        assert reg.change_pct == pytest.approx(100.0)
        assert "rose" in reg.describe()

    def test_higher_direction_flags_fall(self, tmp_path):
        history = _grow(new_history(), tmp_path, 4)
        path = _artifact(
            tmp_path, "BENCH_scan_thr", _scan_payload(rps=1000.0)
        )
        append_run(history, [path], run_id="thr")
        regs = check_regressions(history)
        reg = next(r for r in regs if r.metric == "timings.records_per_s")
        assert reg.direction == "higher"
        assert reg.change_pct == pytest.approx(-80.0)
        assert "fell" in reg.describe()

    def test_within_tolerance_not_flagged(self, tmp_path):
        history = _grow(new_history(), tmp_path, 4)
        path = _artifact(tmp_path, "BENCH_scan_ok", _scan_payload(wall=1.2))
        append_run(history, [path], run_id="ok")
        assert check_regressions(history, tolerance=0.25) == []

    def test_improvement_never_flagged(self, tmp_path):
        history = _grow(new_history(), tmp_path, 4)
        path = _artifact(
            tmp_path, "BENCH_scan_fast", _scan_payload(wall=0.1, rps=50000.0)
        )
        append_run(history, [path], run_id="fast")
        assert check_regressions(history) == []

    def test_baseline_is_rolling_median(self, tmp_path):
        # One noisy spike among the priors must not move the baseline:
        # walls [1, 1, 9, 1] -> median 1.0, so wall=2.0 is a regression
        # (a mean baseline of 3.0 would have hidden it).
        history = new_history()
        for i, wall in enumerate([1.0, 1.0, 9.0, 1.0]):
            path = _artifact(
                tmp_path, f"BENCH_scan_m{i}", _scan_payload(wall=wall)
            )
            append_run(history, [path], run_id=f"m{i}")
        path = _artifact(tmp_path, "BENCH_scan_now", _scan_payload(wall=2.0))
        append_run(history, [path], run_id="now")
        regs = check_regressions(history, tolerance=0.25, window=4)
        reg = next(r for r in regs if r.metric == "timings.wall_seconds")
        assert reg.baseline == pytest.approx(1.0)

    def test_window_excludes_ancient_runs(self, tmp_path):
        # Old wall=4.0 era outside the window: baseline comes from the
        # recent wall=1.0 runs only, so wall=2.0 is flagged.
        history = _grow(new_history(), tmp_path, 3, run_prefix="old", wall=4.0)
        _grow(history, tmp_path, 3, run_prefix="new", wall=1.0)
        path = _artifact(tmp_path, "BENCH_scan_x", _scan_payload(wall=2.0))
        append_run(history, [path], run_id="x")
        regs = check_regressions(history, window=3, min_runs=3)
        reg = next(r for r in regs if r.metric == "timings.wall_seconds")
        assert reg.baseline == pytest.approx(1.0)

    def test_zero_baseline_skipped(self, tmp_path):
        history = new_history()
        for i in range(4):
            path = _artifact(
                tmp_path, f"BENCH_scan_z{i}", _scan_payload(wall=0.0)
            )
            append_run(history, [path], run_id=f"z{i}")
        assert check_regressions(history) == []

    def test_sorted_by_magnitude(self, tmp_path):
        history = _grow(new_history(), tmp_path, 4)
        path = _artifact(
            tmp_path, "BENCH_scan_bad", _scan_payload(wall=2.0, rps=500.0)
        )
        append_run(history, [path], run_id="bad")
        regs = check_regressions(history)
        assert len(regs) == 2
        assert abs(regs[0].change_pct) >= abs(regs[1].change_pct)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            check_regressions(new_history(), tolerance=-0.1)
        with pytest.raises(ValueError):
            check_regressions(new_history(), min_runs=0)
        with pytest.raises(ValueError):
            check_regressions(new_history(), min_runs=3, window=2)

    def test_summarize(self, tmp_path):
        assert summarize_history(new_history())["runs"] == 0
        history = _grow(new_history(), tmp_path, 2)
        summary = summarize_history(history)
        assert summary["runs"] == 2
        assert summary["benchmarks"] == ["scan_parallel"]
        assert summary["latest"]["run_id"] == "r1"
        assert summary["latest"]["metrics"] > 0


class TestCli:
    def _append(self, hist, artifacts, run_id):
        return cli_main(
            [
                "bench-history",
                "--history",
                hist,
                "--append",
                *artifacts,
                "--run-id",
                run_id,
            ]
        )

    def test_append_then_clean_check(self, tmp_path, capsys):
        hist = str(tmp_path / "BENCH_history.json")
        for i in range(4):
            path = _artifact(tmp_path, f"BENCH_scan_c{i}", _scan_payload())
            assert self._append(hist, [path], f"c{i}") == 0
        out = capsys.readouterr().out
        assert "appended c3" in out
        assert cli_main(["bench-history", "--history", hist, "--check"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        hist = str(tmp_path / "BENCH_history.json")
        for i in range(4):
            path = _artifact(tmp_path, f"BENCH_scan_s{i}", _scan_payload())
            assert self._append(hist, [path], f"s{i}") == 0
        bad = _artifact(tmp_path, "BENCH_scan_bad", _scan_payload(wall=3.0))
        assert self._append(hist, [bad], "bad") == 0
        capsys.readouterr()
        assert cli_main(["bench-history", "--history", hist, "--check"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "timings.wall_seconds" in captured.out

    def test_bare_call_prints_summary(self, tmp_path, capsys):
        hist = str(tmp_path / "BENCH_history.json")
        path = _artifact(tmp_path, "BENCH_scan_b", _scan_payload())
        assert self._append(hist, [path], "b0") == 0
        capsys.readouterr()
        assert cli_main(["bench-history", "--history", hist]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == 1

    def test_unreadable_history_exits_2(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_history.json"
        hist.write_text("{broken")
        assert cli_main(["bench-history", "--history", str(hist)]) == 2

    def test_missing_artifact_exits_2(self, tmp_path):
        hist = str(tmp_path / "BENCH_history.json")
        assert (
            cli_main(
                [
                    "bench-history",
                    "--history",
                    hist,
                    "--append",
                    str(tmp_path / "nope.json"),
                ]
            )
            == 2
        )
