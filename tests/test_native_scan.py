"""Tests for the native training kernels (`repro.core.native_scan`).

Three layers:

* **kernel equivalence** — each C kernel reproduces its numpy expression
  bit for bit on adversarial inputs (NaN values, negative category codes,
  strided columns, int32/int64 matrix cubes), and raises the same
  ``IndexError`` numpy would on out-of-range indices;
* **dispatch discipline** — wrappers decline (returning the caller to the
  numpy path) on dtypes, layouts and value ranges outside the proven
  bit-identity envelope, and honour ``CMP_NO_NATIVE`` / ``force_numpy``;
* **build-level identity** — full CMP builds match with kernels on and
  off (spot-checked here; the backend × kernel matrix lives in
  ``test_parallel.py``), and concurrent first-time compiles from separate
  processes are safe (the satellite compile-race bugfix).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import native_build, native_scan
from repro.core.gini import _boundary_ginis_numpy, boundary_ginis
from repro.core.histogram import CategoryHistogram, ClassHistogram
from repro.core.linear import GridLine, gini_slope_walk
from repro.core.matrix import HistogramMatrix
from repro.data.discretize import bin_index

pytestmark = [
    pytest.mark.skipif(
        native_build.compiler() is None, reason="no C compiler on this machine"
    ),
    # Under CMP_NO_NATIVE the kernels are off by design and the numpy
    # paths are exercised by the whole rest of the suite; the
    # enabled-mode run covers the disabled path explicitly via the
    # subprocess test below.
    pytest.mark.skipif(
        bool(os.environ.get("CMP_NO_NATIVE")),
        reason="native kernels disabled via CMP_NO_NATIVE",
    ),
]

ENV = {**os.environ, "PYTHONPATH": "src"}


def test_kernels_available():
    assert native_scan.available()
    assert native_scan.warm_up()


# ---------------------------------------------------------------------------
# Kernel equivalence vs the numpy expressions
# ---------------------------------------------------------------------------


class TestHistAccum:
    def _numpy(self, values, labels, edges, q, c):
        counts = np.zeros((q, c))
        vmin = np.full(q, np.inf)
        vmax = np.full(q, -np.inf)
        bins = bin_index(values, edges)
        np.add.at(counts, (bins, np.asarray(labels)), 1.0)
        with np.errstate(invalid="ignore"):
            np.minimum.at(vmin, bins, values)
            np.maximum.at(vmax, bins, values)
        return counts, vmin, vmax

    def test_matches_numpy_with_nans(self, rng):
        n, c = 4_000, 3
        edges = np.sort(rng.normal(size=16))
        values = rng.normal(size=n)
        values[::53] = np.nan  # sorts above every number -> last bin
        labels = rng.integers(0, c, size=n)
        ref = self._numpy(values, labels, edges, len(edges) + 1, c)
        counts = np.zeros((len(edges) + 1, c))
        vmin = np.full(len(edges) + 1, np.inf)
        vmax = np.full(len(edges) + 1, -np.inf)
        assert native_scan.hist_accum(values, labels, edges, counts, vmin, vmax)
        np.testing.assert_array_equal(counts, ref[0])
        np.testing.assert_array_equal(vmin, ref[1])
        np.testing.assert_array_equal(vmax, ref[2])

    def test_strided_column_view(self, rng):
        X = np.ascontiguousarray(rng.normal(size=(500, 5)))
        column = X[:, 3]  # stride 5 doubles
        labels = rng.integers(0, 2, size=500)
        edges = np.array([-0.5, 0.5])
        ref = self._numpy(column, labels, edges, 3, 2)
        counts = np.zeros((3, 2))
        vmin = np.full(3, np.inf)
        vmax = np.full(3, -np.inf)
        assert native_scan.hist_accum(column, labels, edges, counts, vmin, vmax)
        np.testing.assert_array_equal(counts, ref[0])
        np.testing.assert_array_equal(vmin, ref[1])
        np.testing.assert_array_equal(vmax, ref[2])

    def test_histogram_update_identical_native_vs_numpy(self, rng):
        edges = np.sort(rng.normal(size=7))
        values = rng.normal(size=1_000)
        labels = rng.integers(0, 4, size=1_000)
        on = ClassHistogram(edges, 4)
        on.update(values, labels)
        with native_scan.force_numpy():
            off = ClassHistogram(edges, 4)
            off.update(values, labels)
        np.testing.assert_array_equal(on.counts, off.counts)
        np.testing.assert_array_equal(on.vmin, off.vmin)
        np.testing.assert_array_equal(on.vmax, off.vmax)

    def test_label_out_of_range_raises(self, rng):
        values = rng.normal(size=10)
        labels = np.full(10, 7, dtype=np.int64)
        with pytest.raises(IndexError):
            native_scan.hist_accum(
                values,
                labels,
                np.array([0.0]),
                np.zeros((2, 3)),
                np.full(2, np.inf),
                np.full(2, -np.inf),
            )

    def test_declines_off_envelope(self, rng):
        edges = np.array([0.0])
        counts = np.zeros((2, 2))
        vmin = np.full(2, np.inf)
        vmax = np.full(2, -np.inf)
        f32 = rng.normal(size=8).astype(np.float32)
        labels = np.zeros(8, dtype=np.int64)
        assert not native_scan.hist_accum(f32, labels, edges, counts, vmin, vmax)
        values = rng.normal(size=8)
        assert not native_scan.hist_accum(
            values, np.zeros(8, dtype=bool), edges, counts, vmin, vmax
        )
        assert not native_scan.hist_accum(
            values, np.zeros(7, dtype=np.int64), edges, counts, vmin, vmax
        )


class TestCatAccum:
    def test_matches_numpy_with_negative_codes(self, rng):
        n, ncat, c = 2_000, 6, 3
        codes = rng.integers(0, ncat, size=n).astype(np.float64)
        codes[::71] = -2.0  # numpy fancy indexing wraps negatives
        labels = rng.integers(0, c, size=n)
        ref = np.zeros((ncat, c))
        np.add.at(ref, (np.asarray(codes, dtype=np.intp), np.asarray(labels)), 1.0)
        counts = np.zeros((ncat, c))
        assert native_scan.cat_accum(codes, labels, counts)
        np.testing.assert_array_equal(counts, ref)

    def test_category_histogram_identical(self, rng):
        codes = rng.integers(0, 5, size=800).astype(np.float64)
        labels = rng.integers(0, 2, size=800)
        on = CategoryHistogram(5, 2)
        on.update(codes, labels)
        with native_scan.force_numpy():
            off = CategoryHistogram(5, 2)
            off.update(codes, labels)
        np.testing.assert_array_equal(on.counts, off.counts)

    @pytest.mark.parametrize("bad", [99.0, -99.0, float("nan"), 1e19])
    def test_out_of_range_code_raises(self, bad):
        codes = np.array([0.0, bad])
        labels = np.array([0, 0], dtype=np.int64)
        with pytest.raises(IndexError):
            native_scan.cat_accum(codes, labels, np.zeros((4, 2)))


class TestMatrixAccum:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_matches_numpy(self, rng, dtype):
        n, qx, qy, c = 3_000, 9, 11, 3
        x_edges = np.sort(rng.normal(size=qx - 1))
        y_edges = np.sort(rng.normal(size=qy - 1))
        xv = rng.normal(size=n)
        yv = rng.normal(size=n)
        labels = rng.integers(0, c, size=n)
        x_bins = bin_index(xv, x_edges)
        y_bins = bin_index(yv, y_edges)
        ref = np.zeros((qx, qy, c), dtype=dtype)
        np.add.at(ref, (x_bins, y_bins, np.asarray(labels)), 1)
        rmin = np.full(qy, np.inf)
        rmax = np.full(qy, -np.inf)
        np.minimum.at(rmin, y_bins, yv)
        np.maximum.at(rmax, y_bins, yv)
        counts = np.zeros((qx, qy, c), dtype=dtype)
        vmin = np.full(qy, np.inf)
        vmax = np.full(qy, -np.inf)
        assert native_scan.matrix_accum(x_bins, yv, labels, y_edges, counts, vmin, vmax)
        np.testing.assert_array_equal(counts, ref)
        np.testing.assert_array_equal(vmin, rmin)
        np.testing.assert_array_equal(vmax, rmax)

    def test_update_binned_identical(self, rng):
        m_on = HistogramMatrix(0, 1, np.array([0.0]), np.array([-1.0, 1.0]), 2)
        m_off = HistogramMatrix(0, 1, np.array([0.0]), np.array([-1.0, 1.0]), 2)
        xv = rng.normal(size=600)
        yv = rng.normal(size=600)
        labels = rng.integers(0, 2, size=600)
        x_bins = bin_index(xv, m_on.x_edges)
        m_on.update_binned(x_bins, yv, labels)
        with native_scan.force_numpy():
            m_off.update_binned(x_bins, yv, labels)
        np.testing.assert_array_equal(m_on.counts, m_off.counts)
        np.testing.assert_array_equal(m_on.y_stats.vmin, m_off.y_stats.vmin)
        np.testing.assert_array_equal(m_on.y_stats.vmax, m_off.y_stats.vmax)

    def test_unsupported_count_dtype_declines(self, rng):
        counts = np.zeros((2, 2, 2), dtype=np.float64)
        assert not native_scan.matrix_accum(
            np.zeros(4, dtype=np.intp),
            rng.normal(size=4),
            np.zeros(4, dtype=np.int64),
            np.array([0.0]),
            counts,
            np.full(2, np.inf),
            np.full(2, -np.inf),
        )


class TestBoundaryGinis:
    def test_matches_numpy(self, rng):
        cum = rng.integers(0, 50, size=(500, 4)).astype(np.float64).cumsum(axis=0)
        totals = cum[-1].copy()
        native = native_scan.boundary_ginis(cum, totals)
        assert native is not None
        np.testing.assert_array_equal(native, _boundary_ginis_numpy(cum, totals))

    def test_dispatching_wrapper_identical(self, rng):
        cum = rng.integers(0, 9, size=(64, 3)).astype(np.float64).cumsum(axis=0)
        totals = cum[-1].copy()
        on = boundary_ginis(cum, totals)
        with native_scan.force_numpy():
            off = boundary_ginis(cum, totals)
        np.testing.assert_array_equal(on, off)

    def test_degenerate_all_zero_row(self):
        # A zero totals vector makes every boundary degenerate: gini 0.
        cum = np.zeros((3, 2))
        out = native_scan.boundary_ginis(cum, np.zeros(2))
        np.testing.assert_array_equal(out, np.zeros(3))

    def test_declines_at_eight_classes(self):
        # numpy's class-axis sum goes pairwise at 8 elements; the
        # sequential C sum is only bit-identical below that.
        assert native_scan.boundary_ginis(np.zeros((4, 8)), np.zeros(8)) is None
        assert native_scan.boundary_ginis(np.zeros((4, 7)), np.zeros(7)) is not None

    def test_declines_non_contiguous(self, rng):
        wide = rng.integers(0, 5, size=(10, 8)).astype(np.float64)
        assert native_scan.boundary_ginis(wide[:, ::2], wide[0, ::2]) is None


class TestSlopeWalk:
    def test_matches_python_walk(self, rng):
        for _ in range(30):
            qx = int(rng.integers(2, 12))
            qy = int(rng.integers(2, 12))
            c = int(rng.integers(2, 5))
            counts = rng.integers(0, 25, size=(qx, qy, c)).astype(np.float64)
            with native_scan.force_numpy():
                ref_gini, ref_line = gini_slope_walk(counts)
            got_gini, got_line = gini_slope_walk(counts)
            assert got_gini == ref_gini
            assert (got_line.x, got_line.y) == (ref_line.x, ref_line.y)

    def test_flipped_view_matches(self, rng):
        counts = rng.integers(0, 10, size=(6, 7, 2)).astype(np.float64)
        flipped = counts[:, ::-1, :]  # giniPositiveSlope's view
        with native_scan.force_numpy():
            ref = gini_slope_walk(flipped)
        got = gini_slope_walk(flipped)
        assert got[0] == ref[0]
        assert isinstance(got[1], GridLine)

    def test_declines_outside_exactness_envelope(self):
        fractional = np.full((3, 3, 2), 0.5)
        assert native_scan.slope_walk(fractional, 16) is None
        negative = np.full((3, 3, 2), -1.0)
        assert native_scan.slope_walk(negative, 16) is None
        nan = np.zeros((3, 3, 2))
        nan[0, 0, 0] = np.nan
        assert native_scan.slope_walk(nan, 16) is None
        huge = np.zeros((3, 3, 2))
        huge[0, 0, 0] = 2.0**27
        assert native_scan.slope_walk(huge, 16) is None
        assert native_scan.slope_walk(np.zeros((2, 2)), 16) is None


# ---------------------------------------------------------------------------
# Dispatch state: counters, force_numpy, CMP_NO_NATIVE
# ---------------------------------------------------------------------------


class TestDispatchState:
    def test_kernel_counts_advance(self, rng):
        before = native_scan.kernel_counts()
        hist = ClassHistogram(np.array([0.0]), 2)
        hist.update(rng.normal(size=64), rng.integers(0, 2, size=64))
        after = native_scan.kernel_counts()
        assert after["hist_accum"] == before["hist_accum"] + 1
        assert native_scan.kernel_calls_total() == sum(after.values())

    def test_force_numpy_restores(self):
        assert native_scan.available()
        with native_scan.force_numpy():
            assert not native_scan.available()
            with native_scan.force_numpy():
                assert not native_scan.available()
        assert native_scan.available()

    def test_cmp_no_native_disables_kernels(self):
        code = (
            "from repro.core import native_scan\n"
            "import numpy as np\n"
            "assert not native_scan.available()\n"
            "assert native_scan.boundary_ginis(np.zeros((2, 2)), np.zeros(2)) is None\n"
            "from repro.core.histogram import ClassHistogram\n"
            "h = ClassHistogram(np.array([0.0]), 2)\n"
            "h.update(np.array([-1.0, 1.0]), np.array([0, 1]))\n"
            "assert h.counts.sum() == 2\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**ENV, "CMP_NO_NATIVE": "1"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


# ---------------------------------------------------------------------------
# Compile cache: concurrency (satellite bugfix) and keying
# ---------------------------------------------------------------------------


class TestCompileRace:
    def test_two_processes_compile_concurrently(self, tmp_path):
        """Two fresh processes racing on a cold cache must both succeed.

        Regression for the compile race: both build the same cache key at
        once; per-pid temp files + atomic rename mean neither can load a
        half-written library.
        """
        code = (
            "from repro.core import native, native_scan\n"
            "assert native_scan.warm_up()\n"
            "assert native.native_available()\n"
            "print('ok')\n"
        )
        env = {**ENV, "CMP_NATIVE_CACHE": str(tmp_path / "cache")}
        env.pop("CMP_NO_NATIVE", None)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=240)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        published = list((tmp_path / "cache").glob("*.so"))
        assert len(published) == 2  # route + scan libraries
        leftovers = list((tmp_path / "cache").glob("*.tmp*"))
        assert leftovers == []

    def test_cache_key_covers_compiler_and_source(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CMP_NATIVE_CACHE", str(tmp_path))
        a = native_build.library_path("k", "int f(void){return 1;}", "cc")
        b = native_build.library_path("k", "int f(void){return 2;}", "cc")
        c = native_build.library_path("k", "int f(void){return 1;}", "gcc")
        assert len({a, b, c}) == 3
        assert all(p.startswith(str(tmp_path)) for p in (a, b, c))

    def test_load_library_reuses_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CMP_NATIVE_CACHE", str(tmp_path))
        source = "int cmp_answer(void) { return 42; }\n"
        lib = native_build.load_library("answer", source)
        assert lib is not None
        assert lib.cmp_answer() == 42
        (path,) = tmp_path.glob("answer-*.so")
        stamp = path.stat().st_mtime_ns
        again = native_build.load_library("answer", source)
        assert again.cmp_answer() == 42
        assert path.stat().st_mtime_ns == stamp  # no recompile
