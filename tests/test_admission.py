"""Tests for admission control, deadlines, and engine hardening
(serve/admission.py plus the ServingEngine robustness paths)."""

import threading

import numpy as np
import pytest

from repro.eval.treegen import random_batch, random_tree
from repro.serve import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    ModelRegistry,
    NO_DEADLINE,
    Overloaded,
    ServingEngine,
    SlowModel,
    StuckModel,
    as_deadline,
)
from repro.serve.faults import FlakyModel, ModelExecutionError


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestDeadline:
    def test_no_deadline_never_expires(self):
        assert not NO_DEADLINE.expired
        assert NO_DEADLINE.remaining() is None
        assert as_deadline(None) is NO_DEADLINE

    def test_expiry_on_fake_clock(self):
        clock = FakeClock()
        dl = Deadline.after(5.0, clock)
        assert not dl.expired
        assert dl.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert dl.remaining() == pytest.approx(1.0)
        clock.advance(1.0)
        assert dl.expired
        assert dl.remaining() == 0.0

    def test_as_deadline_coercions(self):
        clock = FakeClock()
        dl = as_deadline(2.5, clock)
        assert dl.remaining() == pytest.approx(2.5)
        assert as_deadline(dl) is dl
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestAdmissionController:
    def test_bounds_depth_and_counts(self):
        gate = AdmissionController(max_depth=2)
        assert gate.try_acquire() and gate.try_acquire()
        assert gate.depth == 2
        assert not gate.try_acquire()  # full: shed, not blocked
        snap = gate.snapshot()
        assert snap["admitted"] == 2 and snap["shed"] == 1
        assert snap["peak_depth"] == 2
        gate.release()
        assert gate.try_acquire()
        gate.release()
        gate.release()
        assert gate.depth == 0

    def test_admit_context_manager(self):
        gate = AdmissionController(max_depth=1)
        with gate.admit():
            assert gate.depth == 1
            with pytest.raises(Overloaded) as exc:
                with gate.admit():
                    pass  # pragma: no cover
            assert exc.value.max_depth == 1
        assert gate.depth == 0

    def test_release_without_acquire_raises(self):
        gate = AdmissionController(max_depth=1)
        with pytest.raises(RuntimeError):
            gate.release()

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)


def _engine_with_tree(seed=0, depth=4, **kwargs):
    tree = random_tree(depth=depth, seed=seed)
    engine = ServingEngine(**kwargs)
    key = engine.registry.register(tree)
    return engine, tree, key


class TestEngineValidation:
    def test_wrong_width_names_fingerprint_and_width(self):
        engine, tree, key = _engine_with_tree(seed=20)
        p = tree.schema.n_attributes
        X = np.zeros((5, p + 2))
        with pytest.raises(ValueError) as exc:
            engine.predict(key, X)
        assert key in str(exc.value)
        assert str(p) in str(exc.value)

    def test_non_2d_batch_rejected(self):
        engine, tree, key = _engine_with_tree(seed=21)
        with pytest.raises(ValueError, match="2-D"):
            engine.predict(key, np.zeros(tree.schema.n_attributes))
        with pytest.raises(ValueError, match="2-D"):
            engine.predict(key, np.zeros((2, 2, 2)))

    def test_empty_batch_still_allowed(self):
        # [] arrives as shape (0, 1) regardless of the true width; the
        # width check must not break the established empty-batch contract.
        engine, tree, key = _engine_with_tree(seed=22)
        assert engine.predict(key, []).shape == (0,)

    def test_validation_error_does_not_trip_breaker(self):
        from repro.serve import BreakerPolicy

        engine, tree, key = _engine_with_tree(
            seed=23, breaker_policy=BreakerPolicy(failure_threshold=1)
        )
        with pytest.raises(ValueError):
            engine.predict(key, np.zeros((3, tree.schema.n_attributes + 1)))
        # A client-side error is not a model failure.
        assert engine.breaker(key).state == "closed"


class TestEngineClosed:
    def test_methods_after_close_raise(self):
        engine, tree, key = _engine_with_tree(seed=24)
        X = random_batch(tree.schema, 10, seed=1)
        engine.close()
        for method in ("predict", "predict_proba", "apply"):
            with pytest.raises(RuntimeError, match="closed"):
                getattr(engine, method)(key, X)

    def test_close_is_idempotent(self):
        engine, _, _ = _engine_with_tree(seed=25)
        engine.close()
        engine.close()


class TestEngineAdmission:
    def test_sheds_when_queue_full(self):
        tree = random_tree(depth=4, seed=26)
        stuck = StuckModel(tree.compiled())
        engine = ServingEngine(max_queue_depth=1)
        key = engine.registry.register(stuck)
        X = random_batch(tree.schema, 4, seed=2)

        errors = []
        results = []

        def call():
            try:
                results.append(engine.predict(key, X))
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        t = threading.Thread(target=call)
        t.start()
        assert stuck.entered.wait(5.0)
        # The permit is held by the stuck request: next request sheds now.
        with pytest.raises(Overloaded):
            engine.predict(key, X)
        assert engine.registry.stats(key).snapshot()["shed"] == 1
        stuck.release.set()
        t.join(5.0)
        assert not errors and len(results) == 1
        np.testing.assert_array_equal(results[0], tree.predict(X))
        # Permit returned: traffic flows again.
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))

    def test_admitted_predictions_bit_identical(self):
        tree = random_tree(depth=6, seed=27)
        engine = ServingEngine(max_queue_depth=4)
        key = engine.registry.register(tree)
        X = random_batch(tree.schema, 2000, seed=3, unseen_frac=0.05)
        np.testing.assert_array_equal(
            engine.predict(key, X), tree.compiled().predict(X)
        )
        np.testing.assert_array_equal(
            engine.predict_proba(key, X), tree.compiled().predict_proba(X)
        )

    def test_shared_controller_across_engines(self):
        gate = AdmissionController(max_depth=8)
        e1 = ServingEngine(max_queue_depth=gate)
        e2 = ServingEngine(max_queue_depth=gate)
        assert e1.admission is gate and e2.admission is gate


class TestEngineDeadlines:
    def test_expired_deadline_skips_execution(self):
        engine, tree, key = _engine_with_tree(seed=28)
        X = random_batch(tree.schema, 10, seed=4)
        clock = FakeClock()
        dl = Deadline.after(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            engine.predict(key, X, deadline=dl)
        snap = engine.registry.stats(key).snapshot()
        assert snap["timeouts"] == 1
        assert snap["batches"] == 0  # the model was never executed

    def test_generous_deadline_serves_normally(self):
        engine, tree, key = _engine_with_tree(seed=29)
        X = random_batch(tree.schema, 50, seed=5)
        np.testing.assert_array_equal(
            engine.predict(key, X, deadline=30.0), tree.predict(X)
        )
        assert engine.registry.stats(key).snapshot()["timeouts"] == 0

    def test_shard_wait_times_out(self):
        tree = random_tree(depth=4, seed=30)
        stuck = StuckModel(tree.compiled())
        engine = ServingEngine(workers=2, min_shard_rows=4)
        key = engine.registry.register(stuck)
        X = random_batch(tree.schema, 64, seed=6)
        try:
            with pytest.raises(DeadlineExceeded):
                engine.predict(key, X, deadline=0.05)
            assert engine.registry.stats(key).snapshot()["timeouts"] == 1
        finally:
            stuck.release.set()
            engine.close()


class TestShardRetry:
    def test_failed_shard_is_retried(self):
        tree = random_tree(depth=4, seed=31)
        flaky = FlakyModel(tree.compiled(), fail_calls={0})
        engine = ServingEngine(shard_retries=1, shard_backoff_s=0.0)
        key = engine.registry.register(flaky)
        X = random_batch(tree.schema, 20, seed=7)
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))
        assert engine.registry.stats(key).snapshot()["shard_retries"] == 1

    def test_retry_budget_exhausted_propagates(self):
        tree = random_tree(depth=4, seed=32)
        flaky = FlakyModel(tree.compiled(), fail_calls={0, 1})
        engine = ServingEngine(shard_retries=1, shard_backoff_s=0.0)
        key = engine.registry.register(flaky)
        X = random_batch(tree.schema, 20, seed=8)
        with pytest.raises(ModelExecutionError):
            engine.predict(key, X)
        # The next call (index 2) is past the scripted failures.
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServingEngine(shard_retries=-1)
        with pytest.raises(ValueError):
            ServingEngine(shard_backoff_s=-0.1)


class TestServeFaultWrappers:
    def test_slow_model_delegates_and_counts(self):
        tree = random_tree(depth=3, seed=33)
        slow = SlowModel(tree.compiled(), delay_s=0.0)
        X = random_batch(tree.schema, 10, seed=9)
        np.testing.assert_array_equal(slow.predict(X), tree.predict(X))
        np.testing.assert_array_equal(slow.predict_proba(X), tree.predict_proba(X))
        np.testing.assert_array_equal(slow.apply(X), tree.apply(X))
        assert slow.calls == 3
        assert slow.fingerprint == tree.compiled().fingerprint
        with pytest.raises(ValueError):
            SlowModel(tree.compiled(), delay_s=-1.0)

    def test_flaky_model_seeded_schedule_replays(self):
        tree = random_tree(depth=3, seed=34)
        X = random_batch(tree.schema, 5, seed=10)

        def failure_pattern():
            flaky = FlakyModel(
                tree.compiled(), fail_rate=0.5, seed=7, max_consecutive=2
            )
            pattern = []
            for _ in range(30):
                try:
                    flaky.predict(X)
                    pattern.append(False)
                except ModelExecutionError:
                    pattern.append(True)
            return pattern

        first, second = failure_pattern(), failure_pattern()
        assert first == second  # deterministic replay
        assert any(first) and not all(first)
        # max_consecutive bounds every failure streak.
        streak = longest = 0
        for failed in first:
            streak = streak + 1 if failed else 0
            longest = max(longest, streak)
        assert longest <= 2

    def test_flaky_model_rejects_bad_config(self):
        tree = random_tree(depth=3, seed=35)
        with pytest.raises(ValueError):
            FlakyModel(tree.compiled(), fail_rate=1.5)
        with pytest.raises(ValueError):
            FlakyModel(tree.compiled(), max_consecutive=0)

    def test_stuck_model_times_out_when_never_released(self):
        tree = random_tree(depth=3, seed=36)
        stuck = StuckModel(tree.compiled(), timeout_s=0.01)
        with pytest.raises(ModelExecutionError, match="never released"):
            stuck.predict(random_batch(tree.schema, 2, seed=11))
