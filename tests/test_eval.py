"""Tests for metrics, the harness and table formatting."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.core.splits import NumericSplit
from repro.core.tree import DecisionTree, TreeAccount
from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous
from repro.eval.harness import format_table, run_builder
from repro.eval.metrics import accuracy, confusion_matrix, error_rate, per_class_recall


def perfect_tree_and_data():
    schema = Schema((continuous("x"),), ("a", "b"))
    account = TreeAccount()
    root = account.new_node(0, np.array([5.0, 5.0]))
    left = account.new_node(1, np.array([5.0, 0.0]))
    right = account.new_node(1, np.array([0.0, 5.0]))
    root.split = NumericSplit(0, 0.0)
    root.left, root.right = left, right
    tree = DecisionTree(root, schema)
    X = np.array([[-1.0], [-2.0], [1.0], [2.0]])
    y = np.array([0, 0, 1, 1])
    return tree, Dataset(X, y, schema)


class TestMetrics:
    def test_accuracy_and_error(self):
        tree, ds = perfect_tree_and_data()
        assert accuracy(tree, ds) == 1.0
        assert error_rate(tree, ds) == 0.0

    def test_confusion_matrix(self):
        tree, ds = perfect_tree_and_data()
        cm = confusion_matrix(tree, ds)
        np.testing.assert_array_equal(cm, [[2, 0], [0, 2]])

    def test_per_class_recall(self):
        tree, ds = perfect_tree_and_data()
        np.testing.assert_allclose(per_class_recall(tree, ds), [1.0, 1.0])

    def test_empty_dataset_rejected(self):
        tree, ds = perfect_tree_and_data()
        empty = Dataset(np.empty((0, 1)), np.empty(0, dtype=np.int64), ds.schema)
        with pytest.raises(ValueError, match="empty"):
            accuracy(tree, empty)


class TestHarness:
    def test_run_builder_record(self, f2_small, fast_config, rng):
        train, test = f2_small.split_holdout(0.25, rng)
        record, result = run_builder(SprintBuilder(fast_config), train, test)
        assert record.builder == "SPRINT"
        assert record.n_records == train.n_records
        assert 0.5 < record.train_accuracy <= 1.0
        assert record.test_accuracy is not None
        assert record.test_accuracy <= record.train_accuracy + 0.05
        assert record.scans == result.stats.io.scans
        d = record.as_dict()
        assert "test_acc" in d and "sim_ms" in d

    def test_format_table(self):
        rows = [
            {"a": 1, "b": "xx"},
            {"a": 22, "c": 3.5},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert len(lines) == 4

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"
