"""Tests for repro.obs.export: Prometheus text, JSON routing, stats adapters."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.io.metrics import BuildStats, IOStats, ServingStats
from repro.obs.export import (
    record_build_stats,
    record_io_stats,
    record_serving_stats,
    to_prometheus,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "data" / "golden_metrics.prom"
DATA = Path(__file__).parent / "data"


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("demo_requests_total", "Requests served.", {"path": "/predict"}).inc(3)
    reg.counter("demo_requests_total", labels={"path": "/health"}).inc()
    reg.gauge("demo_temperature", "Current temperature.").set(21.5)
    h = reg.histogram(
        "demo_latency_seconds",
        "Request latency.",
        {"service": "cmp"},
        bounds=(0.001, 0.01, 0.1),
    )
    for v in (0.0005, 0.002, 0.009, 1.5):
        h.observe(v)
    reg.gauge("demo_weird_label", "Label escaping.", {"text": 'a"b\\c\nd'}).set(1)
    return reg


class TestPrometheusText:
    def test_golden_file(self):
        # The exposition format is an external contract: byte-for-byte.
        assert to_prometheus(_golden_registry()) == GOLDEN.read_text()

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_integer_compaction(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(5.0)
        reg.gauge("g").set(2.25)
        text = to_prometheus(reg)
        assert "n_total 5\n" in text
        assert "g 2.25\n" in text

    def test_histogram_buckets_cumulative_and_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        text = to_prometheus(reg)
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="2"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text


class TestEscaping:
    """One golden file per escape character, label values and HELP text.

    The exposition format escapes ``\\``, ``"`` and newline in label
    values but only ``\\`` and newline in HELP text — a raw ``"`` in
    HELP is legal and must pass through unescaped.
    """

    @pytest.mark.parametrize(
        "golden_name, value",
        [
            ("golden_escape_backslash.prom", "dir\\path"),
            ("golden_escape_quote.prom", 'say "hi"'),
            ("golden_escape_newline.prom", "line1\nline2"),
        ],
    )
    def test_label_value_escape_golden(self, golden_name, value):
        reg = MetricsRegistry()
        reg.gauge("demo_escape", "Escape demo.", {"text": value}).set(1)
        assert to_prometheus(reg) == (DATA / golden_name).read_text()

    def test_help_text_escape_golden(self):
        reg = MetricsRegistry()
        reg.gauge(
            "demo_help", 'Path "C:\\tmp"\nsecond line.', {"k": "v"}
        ).set(1)
        assert to_prometheus(reg) == (DATA / "golden_escape_help.prom").read_text()

    def test_help_newline_never_splits_line(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "before\nafter").inc()
        text = to_prometheus(reg)
        assert "# HELP c_total before\\nafter\n" in text
        # Every line must still be a comment or a sample.
        for line in text.splitlines():
            assert line.startswith("#") or line.startswith("c_total")

    def test_label_round_trips_all_escapes_together(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels={"text": 'a"b\\c\nd'}).set(1)
        assert 'text="a\\"b\\\\c\\nd"' in to_prometheus(reg)


class TestWriteMetrics:
    def test_prom_path(self, tmp_path):
        path = tmp_path / "out.prom"
        write_metrics(_golden_registry(), str(path))
        assert path.read_text() == GOLDEN.read_text()

    def test_json_path(self, tmp_path):
        path = tmp_path / "out.json"
        write_metrics(_golden_registry(), str(path))
        data = json.loads(path.read_text())
        assert data["demo_temperature"]["values"][0]["value"] == 21.5
        assert data["demo_latency_seconds"]["type"] == "histogram"

    def test_file_object_gets_prometheus(self, tmp_path):
        import io

        buf = io.StringIO()
        write_metrics(_golden_registry(), buf)
        assert buf.getvalue() == GOLDEN.read_text()


class TestAdapters:
    def test_record_io_stats(self):
        io_stats = IOStats()
        io_stats.begin_scan()
        io_stats.count_pages(4, 100)
        io_stats.count_retry(12.5)
        reg = MetricsRegistry()
        record_io_stats(reg, io_stats, {"builder": "CMP"})
        labels = {"builder": "CMP"}
        assert reg.counter("cmp_io_scans_total", labels=labels).value == 1
        assert reg.counter("cmp_io_pages_read_total", labels=labels).value == 4
        assert reg.counter("cmp_io_read_retries_total", labels=labels).value == 1
        assert reg.counter("cmp_io_backoff_ms_total", labels=labels).value == 12.5

    def test_record_build_stats_accumulates(self):
        stats = BuildStats()
        stats.io.begin_scan()
        stats.wall_seconds = 1.5
        stats.nodes_created = 9
        stats.levels_built = 3
        stats.memory.allocate("x", 1000)
        stats.phase_seconds["scan"] = 0.5
        reg = MetricsRegistry()
        record_build_stats(reg, stats)
        record_build_stats(reg, stats)
        # Counters accumulate across builds; gauges reflect the last one.
        assert reg.counter("cmp_build_total").value == 2
        assert reg.counter("cmp_build_wall_seconds_total").value == 3.0
        assert reg.counter("cmp_io_scans_total").value == 2
        assert (
            reg.counter(
                "cmp_build_phase_seconds_total", labels={"phase": "scan"}
            ).value
            == 1.0
        )
        assert reg.gauge("cmp_build_peak_memory_bytes").value == 1000
        assert reg.gauge("cmp_build_nodes").value == 9

    def test_record_serving_stats_merges_latency(self):
        stats = ServingStats()
        stats.count_request(5)
        stats.observe_batch(10, 0.002)
        stats.observe_batch(20, 0.004)
        reg = MetricsRegistry()
        record_serving_stats(reg, stats, {"model": "abc"})
        labels = {"model": "abc"}
        assert reg.counter("cmp_serve_requests_total", labels=labels).value == 5
        assert reg.counter("cmp_serve_batches_total", labels=labels).value == 2
        assert reg.counter("cmp_serve_records_total", labels=labels).value == 30
        hist = reg.histogram(
            "cmp_serve_batch_latency_seconds",
            labels=labels,
            bounds=stats.latency.bounds,
        )
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.006)
        # Registry quantiles agree with the snapshot's percentiles.
        snap = stats.snapshot()
        assert 1000.0 * hist.quantile(0.5) == pytest.approx(snap["p50_latency_ms"])
