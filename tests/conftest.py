"""Shared fixtures: small, deterministic datasets and configurations."""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.data.synthetic import generate_agrawal, generate_function_f


#: Base seed for the ``rng`` fixture.  Override with ``PYTEST_SEED=N``
#: to rerun the whole suite on a different deterministic stream; the
#: active value is printed alongside any failing test that used ``rng``.
PYTEST_SEED = int(os.environ.get("PYTEST_SEED", "0"))


@pytest.fixture()
def rng(request: pytest.FixtureRequest) -> np.random.Generator:
    """Per-test deterministic generator.

    Seeded from ``PYTEST_SEED`` plus a CRC of the test's node id, so each
    test gets an independent stream, reruns of a single test reproduce
    the full-suite behaviour exactly, and ``PYTEST_SEED=N pytest ...``
    re-seeds everything at once.
    """
    return np.random.default_rng(
        [PYTEST_SEED, zlib.crc32(request.node.nodeid.encode())]
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Print the active seed next to failures of ``rng``-using tests."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        if "rng" in getattr(item, "fixturenames", ()):
            report.sections.append(
                (
                    "rng seed",
                    f"PYTEST_SEED={PYTEST_SEED} — rerun with "
                    f"`PYTEST_SEED={PYTEST_SEED} pytest {item.nodeid}` "
                    "to reproduce this stream",
                )
            )


@pytest.fixture(scope="session")
def f2_small() -> Dataset:
    """Function 2 at a size small enough for end-to-end builder tests."""
    return generate_agrawal("F2", 6_000, seed=7)


@pytest.fixture(scope="session")
def f7_small() -> Dataset:
    """Function 7, small."""
    return generate_agrawal("F7", 6_000, seed=7)


@pytest.fixture(scope="session")
def ff_small() -> Dataset:
    """The paper's Function f (linearly correlated), small."""
    return generate_function_f(8_000, seed=7)


@pytest.fixture(scope="session")
def two_blob() -> Dataset:
    """A clean two-attribute, two-class dataset with an obvious best split.

    Class 1 iff ``x0 > 0``; ``x1`` is pure noise.  Every exact algorithm
    must split on ``x0`` at ~0 at the root.
    """
    rng = np.random.default_rng(11)
    n = 4_000
    x0 = rng.normal(0.0, 1.0, n)
    x1 = rng.normal(0.0, 1.0, n)
    y = (x0 > 0.0).astype(np.int64)
    schema = Schema((continuous("x0"), continuous("x1")), ("neg", "pos"))
    return Dataset(np.column_stack([x0, x1]), y, schema)


@pytest.fixture(scope="session")
def diagonal() -> Dataset:
    """Class decided by ``x + y >= 1`` on the unit square — the workload
    where only a linear split is clean."""
    rng = np.random.default_rng(13)
    n = 8_000
    X = rng.uniform(0.0, 1.0, (n, 2))
    y = (X[:, 0] + X[:, 1] >= 1.0).astype(np.int64)
    schema = Schema((continuous("x"), continuous("y")), ("under", "over"))
    return Dataset(X, y, schema)


@pytest.fixture(scope="session")
def mixed_types() -> Dataset:
    """Continuous + categorical attributes where the categorical one is
    the true signal (class = category parity)."""
    rng = np.random.default_rng(17)
    n = 3_000
    cat = rng.integers(0, 6, n)
    noise = rng.normal(0.0, 1.0, (n, 2))
    y = (cat % 2).astype(np.int64)
    schema = Schema(
        (
            continuous("a"),
            categorical("color", tuple("rgbcmy")),
            continuous("b"),
        ),
        ("even", "odd"),
    )
    X = np.column_stack([noise[:, 0], cat.astype(float), noise[:, 1]])
    return Dataset(X, y, schema)


@pytest.fixture()
def fast_config() -> BuilderConfig:
    """Small-grid configuration for quick end-to-end builds."""
    return BuilderConfig(
        n_intervals=32,
        max_depth=8,
        min_records=20,
        reservoir_capacity=4_000,
    )


def assert_tree_consistent(tree, dataset) -> None:
    """Every leaf's recorded class counts must match actual routing."""
    leaf_ids = tree.apply(dataset.X)
    for node in tree.iter_nodes():
        if node.is_leaf:
            actual = np.bincount(
                dataset.y[leaf_ids == node.node_id], minlength=dataset.n_classes
            )
            np.testing.assert_array_equal(
                actual,
                node.class_counts.astype(np.int64),
                err_msg=f"leaf {node.node_id} counts diverge from routing",
            )
