"""Concept-drift regression: sliding-window refresh recovers, static degrades.

The Agrawal generator's labelling function flips mid-stream
(:func:`repro.data.synthetic.generate_drift`).  A tree trained once on
the prefix keeps serving the stale concept; the sliding-window refresher
re-fits on recent records and recovers held-out accuracy on the new
concept.  Deterministic (fixed seeds, inline refresh, no threads).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.synthetic import drift_boundaries, generate_drift
from repro.eval.metrics import accuracy
from repro.serve.engine import ModelRegistry
from repro.stream import SlidingWindowRefresher, StreamingTrainer

CFG = BuilderConfig(n_intervals=32, max_depth=8, min_records=20)


def _run_drift(segments, *, window, refresh_every, chunk, seed, holdout_fn, holdout_seed):
    stream = generate_drift(segments, seed=seed)
    holdout = generate_drift(((holdout_fn, 3_000),), seed=holdout_seed)

    static = StreamingTrainer(stream.schema, CFG).fit_stream(
        iter([(stream.X[:window], stream.y[:window])])
    )

    registry = ModelRegistry()
    refresher = SlidingWindowRefresher(
        registry,
        "drift",
        stream.schema,
        window_records=window,
        refresh_every=refresh_every,
        config=CFG,
    )
    for lo in range(0, stream.n_records, chunk):
        refresher.observe(stream.X[lo : lo + chunk], stream.y[lo : lo + chunk])
    refresher.refresh()

    final_fp = refresher.history[-1].fingerprint
    refreshed_tree = registry.get(final_fp)
    return static, refreshed_tree, refresher, holdout


class TestDriftRecovery:
    def test_refresh_recovers_static_degrades(self):
        segments = (("F2", 6_000), ("F5", 6_000))
        static, refreshed_tree, refresher, holdout_f5 = _run_drift(
            segments,
            window=3_000,
            refresh_every=1_500,
            chunk=500,
            seed=0,
            holdout_fn="F5",
            holdout_seed=99,
        )
        holdout_f2 = generate_drift((("F2", 3_000),), seed=99)

        static_old = accuracy(static.tree, holdout_f2)
        static_new = accuracy(static.tree, holdout_f5)
        refreshed_new = accuracy(refreshed_tree, holdout_f5)

        # The static tree mastered the old concept...
        assert static_old > 0.68
        # ...but degrades hard once the concept flips.
        assert static_new < static_old - 0.15
        # The refreshed tree recovers on the new concept by a clear margin.
        assert refreshed_new > static_new + 0.10
        assert refreshed_new > 0.65
        # And the recovery came through actual hot swaps.
        assert len(refresher.history) >= 4
        assert len({e.fingerprint for e in refresher.history}) >= 2

    def test_boundaries_helper(self):
        assert drift_boundaries((("F2", 100), ("F5", 50))) == [100, 150]
        data = generate_drift((("F2", 100), ("F5", 50)), seed=1)
        assert data.n_records == 150

    def test_drift_stream_is_deterministic(self):
        a = generate_drift((("F2", 500), ("F5", 500)), seed=5)
        b = generate_drift((("F2", 500), ("F5", 500)), seed=5)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)
        # Covariates share one stream: only the labelling flips at the
        # boundary, so the concept change is the *only* change.
        c = generate_drift((("F2", 1_000),), seed=5)
        np.testing.assert_array_equal(a.X, c.X)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_drift((("NOPE", 100),), seed=0)
        with pytest.raises(ValueError):
            generate_drift((("F2", 0),), seed=0)

    @pytest.mark.slow
    def test_three_way_drift_long_run(self):
        """Longer stream with two concept flips; the refresher tracks each."""
        segments = (("F2", 8_000), ("F5", 8_000), ("F7", 8_000))
        stream = generate_drift(segments, seed=0)
        registry = ModelRegistry()
        refresher = SlidingWindowRefresher(
            registry,
            "drift3",
            stream.schema,
            window_records=4_000,
            refresh_every=2_000,
            config=CFG,
        )
        static = StreamingTrainer(stream.schema, CFG).fit_stream(
            iter([(stream.X[:4_000], stream.y[:4_000])])
        )
        boundaries = drift_boundaries(segments)
        per_segment_static, per_segment_refresh = [], []
        seg = 0
        correct_s = correct_r = seen = 0
        for lo in range(0, stream.n_records, 500):
            Xc = stream.X[lo : lo + 500]
            yc = stream.y[lo : lo + 500]
            if lo >= 4_000:  # prequential scoring after warmup
                fp = refresher.history[-1].fingerprint
                live = registry.get(fp)
                correct_s += int((static.tree.predict(Xc) == yc).sum())
                correct_r += int((live.predict(Xc) == yc).sum())
                seen += len(yc)
            refresher.observe(Xc, yc)
            if lo + 500 in boundaries or lo + 500 == stream.n_records:
                if seen:
                    per_segment_static.append(correct_s / seen)
                    per_segment_refresh.append(correct_r / seen)
                correct_s = correct_r = seen = 0
                seg += 1
        # Segment 1 (post-warmup tail of F2): static is competitive.
        # Segments 2 and 3 (flipped concepts): refresh wins clearly.
        assert len(per_segment_static) == 3
        for s_acc, r_acc in zip(per_segment_static[1:], per_segment_refresh[1:]):
            assert r_acc > s_acc + 0.05
        assert len(refresher.history) >= 8
