"""Tests for versioned rollout (serve/rollout.py) and registry drain
semantics: canary routing, promote/rollback, unregister/lease."""

import threading

import numpy as np
import pytest

from repro.eval.treegen import random_batch, random_tree
from repro.serve import (
    ModelInUseError,
    RolloutManager,
    ServingEngine,
    StuckModel,
)
from repro.serve.rollout import route_fraction


class TestRouteFraction:
    def test_deterministic_and_bounded(self):
        for key in ("user-1", "user-2", ""):
            f = route_fraction("ep", key)
            assert 0.0 <= f < 1.0
            assert route_fraction("ep", key) == f

    def test_endpoint_independence(self):
        # One key's canary membership differs across endpoints.
        keys = [f"k{i}" for i in range(200)]
        a = [route_fraction("ep-a", k) < 0.5 for k in keys]
        b = [route_fraction("ep-b", k) < 0.5 for k in keys]
        assert a != b

    def test_fraction_converges_to_weight(self):
        keys = [f"user-{i}" for i in range(2000)]
        hits = sum(route_fraction("ep", k) < 0.25 for k in keys)
        assert 0.20 < hits / len(keys) < 0.30


class TestRolloutManager:
    def test_deploy_and_resolve_stable_only(self):
        mgr = RolloutManager()
        mgr.deploy("scoring", "aaa")
        assert mgr.resolve("scoring") == "aaa"
        assert mgr.resolve("scoring", route_key="u1") == "aaa"
        snap = mgr.endpoints()[0]
        assert snap["stable"] == "aaa" and snap["stable_routes"] == 2

    def test_weight_extremes(self):
        mgr = RolloutManager()
        mgr.deploy("ep", "stable")
        mgr.set_canary("ep", "canary", weight=0.0)
        assert all(mgr.resolve("ep", f"k{i}") == "stable" for i in range(50))
        mgr.set_canary("ep", "canary", weight=1.0)
        assert all(mgr.resolve("ep", f"k{i}") == "canary" for i in range(50))

    def test_sticky_keyed_routing(self):
        mgr = RolloutManager()
        mgr.deploy("ep", "stable")
        mgr.set_canary("ep", "canary", weight=0.3)
        first = {k: mgr.resolve("ep", k) for k in (f"u{i}" for i in range(100))}
        for k, v in first.items():
            assert mgr.resolve("ep", k) == v  # same key, same version
        assert set(first.values()) == {"stable", "canary"}

    def test_keyless_routing_is_deterministic(self):
        def draw():
            mgr = RolloutManager()
            mgr.deploy("ep", "stable")
            mgr.set_canary("ep", "canary", weight=0.4)
            return [mgr.resolve("ep") for _ in range(64)]

        first, second = draw(), draw()
        assert first == second
        assert set(first) == {"stable", "canary"}

    def test_promote_flips_atomically(self):
        mgr = RolloutManager()
        mgr.deploy("ep", "v1")
        mgr.set_canary("ep", "v2", weight=0.5)
        assert mgr.promote("ep") == "v1"
        snap = mgr.endpoints()[0]
        assert snap["stable"] == "v2"
        assert snap["canary"] is None and snap["canary_weight"] == 0.0
        assert mgr.resolve("ep", "any") == "v2"

    def test_rollback_drops_canary(self):
        mgr = RolloutManager()
        mgr.deploy("ep", "v1")
        mgr.set_canary("ep", "v2", weight=0.9)
        assert mgr.rollback("ep") == "v2"
        assert all(mgr.resolve("ep", f"k{i}") == "v1" for i in range(20))

    def test_error_cases(self):
        mgr = RolloutManager()
        with pytest.raises(ValueError):
            mgr.deploy("", "v1")
        mgr.deploy("ep", "v1")
        with pytest.raises(ValueError):
            mgr.set_canary("ep", "v2", weight=1.5)
        with pytest.raises(ValueError):
            mgr.promote("ep")  # no canary
        with pytest.raises(ValueError):
            mgr.rollback("ep")
        with pytest.raises(KeyError):
            mgr.resolve("missing")
        with pytest.raises(KeyError):
            mgr.remove_endpoint("missing")

    def test_deploy_repoint_keeps_canary(self):
        mgr = RolloutManager()
        mgr.deploy("ep", "v1")
        mgr.set_canary("ep", "v2", weight=0.5)
        mgr.deploy("ep", "v3")
        snap = mgr.endpoints()[0]
        assert snap["stable"] == "v3" and snap["canary"] == "v2"

    def test_routes_to(self):
        mgr = RolloutManager()
        mgr.deploy("a", "v1")
        mgr.deploy("b", "v1")
        mgr.set_canary("b", "v2", weight=0.1)
        assert sorted(mgr.routes_to("v1")) == ["a", "b"]
        assert mgr.routes_to("v2") == ["b"]
        assert mgr.routes_to("v3") == []
        mgr.remove_endpoint("a")
        assert mgr.routes_to("v1") == ["b"]


def _two_model_engine(**kwargs):
    engine = ServingEngine(**kwargs)
    # Same generator defaults -> same record width; predictions differ.
    stable_tree = random_tree(depth=4, seed=50)
    canary_tree = random_tree(depth=4, seed=51)
    stable = engine.registry.register(stable_tree)
    canary = engine.registry.register(canary_tree)
    return engine, stable_tree, canary_tree, stable, canary


class TestRegistryEndpoints:
    def test_endpoints_require_registered_models(self):
        engine = ServingEngine()
        with pytest.raises(KeyError):
            engine.registry.deploy("ep", "nope")
        tree = random_tree(depth=3, seed=52)
        key = engine.registry.register(tree)
        engine.registry.deploy("ep", key)
        with pytest.raises(KeyError):
            engine.registry.set_canary("ep", "nope", weight=0.5)

    def test_endpoint_serving_end_to_end(self):
        engine, stable_tree, canary_tree, stable, canary = _two_model_engine()
        engine.registry.deploy("scoring", stable)
        X = random_batch(stable_tree.schema, 100, seed=60)
        np.testing.assert_array_equal(
            engine.predict("scoring", X), stable_tree.predict(X)
        )
        # Full-weight canary: every request lands on the canary model.
        engine.registry.set_canary("scoring", canary, weight=1.0)
        np.testing.assert_array_equal(
            engine.predict("scoring", X), canary_tree.predict(X)
        )
        # Rollback is instant.
        engine.registry.rollback("scoring")
        np.testing.assert_array_equal(
            engine.predict("scoring", X), stable_tree.predict(X)
        )

    def test_sticky_route_key_end_to_end(self):
        engine, stable_tree, canary_tree, stable, canary = _two_model_engine()
        engine.registry.deploy("ep", stable)
        engine.registry.set_canary("ep", canary, weight=0.5)
        X = random_batch(stable_tree.schema, 40, seed=61)
        expected = {
            key: (
                canary_tree.predict(X)
                if route_fraction("ep", key) < 0.5
                else stable_tree.predict(X)
            )
            for key in ("alice", "bob", "carol", "dave")
        }
        for key, want in expected.items():
            for _ in range(3):  # replays land on the same version
                np.testing.assert_array_equal(
                    engine.predict("ep", X, route_key=key), want
                )

    def test_promote_then_unregister_old_stable(self):
        engine, stable_tree, canary_tree, stable, canary = _two_model_engine()
        engine.registry.deploy("ep", stable)
        engine.registry.set_canary("ep", canary, weight=0.2)
        with pytest.raises(ModelInUseError):
            engine.registry.unregister(stable)
        old = engine.registry.promote("ep")
        assert old == stable
        assert engine.registry.unregister(stable) is True
        assert stable not in engine.registry
        X = random_batch(stable_tree.schema, 30, seed=62)
        np.testing.assert_array_equal(
            engine.predict("ep", X), canary_tree.predict(X)
        )

    def test_resolve_prefers_endpoint_name(self):
        engine, stable_tree, _, stable, canary = _two_model_engine()
        engine.registry.deploy("ep", stable)
        assert engine.registry.resolve("ep") == stable
        assert engine.registry.resolve(canary) == canary
        with pytest.raises(KeyError):
            engine.registry.resolve("missing")


class TestUnregisterDrain:
    def test_unregister_unknown_raises(self):
        engine = ServingEngine()
        with pytest.raises(KeyError):
            engine.registry.unregister("nope")

    def test_unregister_idle_model_is_immediate(self):
        engine, _, _, stable, canary = _two_model_engine()
        assert engine.registry.unregister(canary) is True
        assert canary not in engine.registry

    def test_unregister_defers_while_request_in_flight(self):
        tree = random_tree(depth=4, seed=53)
        stuck = StuckModel(tree.compiled())
        engine = ServingEngine()
        key = engine.registry.register(stuck)
        X = random_batch(tree.schema, 8, seed=63)

        done = []
        t = threading.Thread(target=lambda: done.append(engine.predict(key, X)))
        t.start()
        try:
            assert stuck.entered.wait(5.0)
            assert engine.registry.inflight(key) == 1
            # Removal defers: the in-flight lease pins the model.
            assert engine.registry.unregister(key) is False
            assert key in engine.registry
            # Draining: new requests are refused like an unknown model.
            with pytest.raises(KeyError, match="draining"):
                engine.predict(key, X)
        finally:
            stuck.release.set()
            t.join(5.0)
        # The last lease dropped the entry on release.
        assert key not in engine.registry
        assert engine.registry.inflight(key) == 0
        assert len(done) == 1
        np.testing.assert_array_equal(done[0], tree.predict(X))

    def test_reregister_clears_pending_removal(self):
        tree = random_tree(depth=4, seed=54)
        stuck = StuckModel(tree.compiled())
        engine = ServingEngine()
        key = engine.registry.register(stuck)
        X = random_batch(tree.schema, 8, seed=64)
        t = threading.Thread(target=lambda: engine.predict(key, X))
        t.start()
        try:
            assert stuck.entered.wait(5.0)
            assert engine.registry.unregister(key) is False
            # Re-registering the same fingerprint cancels the removal.
            assert engine.registry.register(stuck) == key
        finally:
            stuck.release.set()
            t.join(5.0)
        assert key in engine.registry

    def test_hot_swap_under_concurrent_traffic(self):
        engine, stable_tree, canary_tree, stable, canary = _two_model_engine()
        engine.registry.deploy("ep", stable)
        X = random_batch(stable_tree.schema, 50, seed=65)
        want_stable = stable_tree.predict(X)
        want_canary = canary_tree.predict(X)

        stop = threading.Event()
        errors = []
        checked = [0]

        def client():
            while not stop.is_set():
                try:
                    out = engine.predict("ep", X)
                except Exception as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)
                    return
                if not (
                    np.array_equal(out, want_stable)
                    or np.array_equal(out, want_canary)
                ):
                    errors.append(AssertionError("mixed-version response"))
                    return
                checked[0] += 1

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            # Churn the rollout while traffic flows: canary up, promote,
            # roll a new canary (the old stable), roll it back.
            for _ in range(15):
                engine.registry.set_canary("ep", canary, weight=0.5)
                engine.registry.promote("ep")
                engine.registry.set_canary("ep", stable, weight=0.5)
                engine.registry.rollback("ep")
                engine.registry.deploy("ep", stable)
        finally:
            stop.set()
            for t in threads:
                t.join(5.0)
        assert not errors
        assert checked[0] > 0
