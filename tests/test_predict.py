"""Tests for predictSplit (Figure 7)."""

import numpy as np
import pytest

from repro.core.predict import predict_split


class TestPredictSplit:
    def test_picks_minimum(self):
        assert predict_split({0: 0.3, 1: 0.1}, {2: 0.2}) == 1

    def test_exact_overrides_fallback(self):
        # Attribute 0 looks great at the parent but bad in the subnode.
        assert predict_split({0: 0.5}, {0: 0.01, 1: 0.3}) == 1

    def test_fallback_used_for_unknown_attrs(self):
        assert predict_split({0: 0.4}, {1: 0.1}) == 1

    def test_tie_breaks_to_lower_index(self):
        assert predict_split({2: 0.2, 1: 0.2}, {}) == 1

    def test_infinite_scores_ignored(self):
        assert predict_split({0: np.inf}, {1: 0.9}) == 1

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError, match="no finite candidate"):
            predict_split({0: np.inf}, {})
