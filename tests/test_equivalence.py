"""Cross-algorithm equivalence: CMP's approximations recover exact splits.

DESIGN.md §7: "CMP-S resolved thresholds equal SPRINT's exact thresholds
whenever the exact optimum falls in a kept alive interval" — checked here
on seeded workloads at the root, plus full-tree agreement on easy data.
"""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.gini import exact_best_threshold
from repro.core.splits import NumericSplit
from repro.data.synthetic import generate_agrawal


CFG = BuilderConfig(
    n_intervals=64, max_depth=3, min_records=50, reservoir_capacity=20_000
)


class TestRootSplitEquivalence:
    @pytest.mark.parametrize("function", ["F1", "F2", "F6", "F7", "F9"])
    def test_cmp_s_root_matches_exact(self, function):
        ds = generate_agrawal(function, 12_000, seed=13)
        cmp_root = CMPSBuilder(CFG).build(ds).tree.root.split
        exact_root = SprintBuilder(CFG).build(ds).tree.root.split
        assert isinstance(cmp_root, NumericSplit)
        assert isinstance(exact_root, NumericSplit)
        # Same attribute...
        assert cmp_root.attr == exact_root.attr, function
        # ...and the exact same threshold (a data value), because the alive
        # buffer resolution reproduces the exact computation.
        assert cmp_root.threshold == exact_root.threshold, function

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_resolved_gini_near_exact_optimum(self, seed):
        # The resolved split can never beat the attribute's exact optimum,
        # and lands on it exactly unless the alive-interval cap pruned the
        # interval holding the optimum (Table 1's bounded approximation).
        ds = generate_agrawal("F2", 8_000, seed=seed)
        cmp_root = CMPSBuilder(CFG).build(ds).tree.root.split
        __, exact_g = exact_best_threshold(
            ds.column(cmp_root.attr), ds.y, ds.n_classes
        )
        left = np.bincount(
            ds.y[ds.column(cmp_root.attr) <= cmp_root.threshold],
            minlength=ds.n_classes,
        )
        from repro.core.gini import gini_partition

        got = gini_partition(left, ds.class_counts() - left)
        assert got >= exact_g - 1e-12
        assert got <= exact_g + 0.005


class TestTreeEquivalenceOnEasyData:
    def test_cmp_family_agrees_with_exact_on_separable_data(self, two_blob):
        cfg = CFG.with_(max_depth=4, min_records=20)
        exact = SprintBuilder(cfg).build(two_blob).tree
        for builder_cls in (CMPSBuilder, CMPBBuilder):
            approx = builder_cls(cfg).build(two_blob).tree
            # Identical root decision (attribute + threshold).
            assert approx.root.split.attr == exact.root.split.attr
            assert approx.root.split.threshold == exact.root.split.threshold
            # And identical classifications everywhere.
            np.testing.assert_array_equal(
                approx.predict(two_blob.X), exact.predict(two_blob.X)
            )
