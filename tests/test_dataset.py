"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous


def make(n: int = 100, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.integers(0, 3, n)
    schema = Schema((continuous("a"), continuous("b")), ("c0", "c1", "c2"))
    return Dataset(X, y, schema)


class TestValidation:
    def test_shape_checks(self):
        ds = make()
        with pytest.raises(ValueError, match="2-D"):
            Dataset(ds.X.ravel(), ds.y, ds.schema)
        with pytest.raises(ValueError, match="aligned"):
            Dataset(ds.X, ds.y[:-1], ds.schema)

    def test_schema_width_check(self):
        ds = make()
        with pytest.raises(ValueError, match="declares"):
            Dataset(ds.X[:, :1], ds.y, ds.schema)

    def test_label_range_check(self):
        ds = make()
        bad = ds.y.copy()
        bad[0] = 7
        with pytest.raises(ValueError, match="out of range"):
            Dataset(ds.X, bad, ds.schema)


class TestAccess:
    def test_column_by_name_and_index(self):
        ds = make()
        np.testing.assert_array_equal(ds.column("b"), ds.X[:, 1])
        np.testing.assert_array_equal(ds.column(0), ds.X[:, 0])

    def test_class_counts(self):
        ds = make()
        counts = ds.class_counts()
        assert counts.sum() == ds.n_records
        assert len(counts) == 3

    def test_take(self):
        ds = make()
        sub = ds.take(np.arange(10))
        assert sub.n_records == 10
        np.testing.assert_array_equal(sub.y, ds.y[:10])


class TestHoldout:
    def test_split_sizes(self, rng):
        ds = make(200)
        train, test = ds.split_holdout(0.25, rng)
        assert test.n_records == 50
        assert train.n_records == 150

    def test_split_disjoint_and_complete(self, rng):
        ds = make(100)
        # Tag each record with a unique value to track identity.
        X = ds.X.copy()
        X[:, 0] = np.arange(100)
        ds = Dataset(X, ds.y, ds.schema)
        train, test = ds.split_holdout(0.3, rng)
        ids = np.concatenate([train.column(0), test.column(0)])
        assert sorted(ids.astype(int)) == list(range(100))

    def test_bad_fraction(self, rng):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            make().split_holdout(1.5, rng)


class TestPaged:
    def test_as_paged_roundtrip(self):
        ds = make(500)
        table = ds.as_paged(page_records=64)
        got_X, got_y = [], []
        for chunk in table.scan():
            got_X.append(chunk.X)
            got_y.append(chunk.y)
        np.testing.assert_array_equal(np.concatenate(got_X), ds.X)
        np.testing.assert_array_equal(np.concatenate(got_y), ds.y)
