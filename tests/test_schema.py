"""Tests for repro.data.schema."""

import pytest

from repro.data.schema import Attribute, AttributeKind, Schema, categorical, continuous


class TestAttribute:
    def test_continuous_shorthand(self):
        a = continuous("age")
        assert a.kind is AttributeKind.CONTINUOUS
        assert a.is_continuous
        assert a.cardinality == 0

    def test_categorical_shorthand(self):
        a = categorical("color", ["r", "g", "b"])
        assert not a.is_continuous
        assert a.cardinality == 3
        assert a.categories == ("r", "g", "b")

    def test_categorical_requires_categories(self):
        with pytest.raises(ValueError, match="needs categories"):
            Attribute("bad", AttributeKind.CATEGORICAL)

    def test_continuous_rejects_categories(self):
        with pytest.raises(ValueError, match="cannot have categories"):
            Attribute("bad", AttributeKind.CONTINUOUS, ("x",))


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            (continuous("a"), categorical("c", ("x", "y")), continuous("b")),
            ("no", "yes"),
        )

    def test_counts(self):
        s = self.make()
        assert s.n_attributes == 3
        assert s.n_classes == 2

    def test_index_lookup(self):
        s = self.make()
        assert s.index_of("b") == 2
        assert s.attribute("c").cardinality == 2
        assert s.attribute(0).name == "a"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no attribute named"):
            self.make().index_of("nope")

    def test_kind_partition(self):
        s = self.make()
        assert s.continuous_indices() == [0, 2]
        assert s.categorical_indices() == [1]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Schema((continuous("a"), continuous("a")), ("x", "y"))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            Schema((continuous("a"),), ("only",))
