"""Tests for the RainForest RF-Hybrid baseline."""

import numpy as np
import pytest

from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sprint import SprintBuilder
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestRainForest:
    def test_counts_consistent(self, f2_small, fast_config):
        result = RainForestBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_identical_tree_to_sprint(self, f2_small, fast_config):
        # Both are exact algorithms over the same candidate splits with the
        # same tie-breaking, so they must grow the same tree.
        rf = RainForestBuilder(fast_config).build(f2_small).tree
        sp = SprintBuilder(fast_config).build(f2_small).tree
        assert rf.render() == sp.render()

    def test_identical_tree_on_f7(self, f7_small, fast_config):
        rf = RainForestBuilder(fast_config).build(f7_small).tree
        sp = SprintBuilder(fast_config).build(f7_small).tree
        assert rf.render() == sp.render()

    def test_one_scan_per_level_when_buffer_fits(self, f2_small, fast_config):
        result = RainForestBuilder(fast_config).build(f2_small)
        # With the default (huge) buffer, one scan per level suffices.
        assert result.stats.io.scans <= result.tree.depth + 1

    def test_small_buffer_forces_batches(self, f2_small, fast_config):
        big = RainForestBuilder(fast_config).build(f2_small)
        cfg = fast_config.with_(avc_buffer_entries=20_000)
        small = RainForestBuilder(cfg).build(f2_small)
        assert small.stats.io.scans > big.stats.io.scans
        # The tree itself is unchanged; only the I/O schedule differs.
        assert small.tree.render() == big.tree.render()

    def test_memory_is_flat_buffer(self, f2_small, fast_config):
        result = RainForestBuilder(fast_config).build(f2_small)
        c = f2_small.n_classes
        expected = fast_config.avc_buffer_entries * 4 * c
        assert result.stats.memory.peak == expected

    def test_categorical(self, mixed_types, fast_config):
        result = RainForestBuilder(fast_config).build(mixed_types)
        assert accuracy(result.tree, mixed_types) == 1.0
