"""End-to-end tests for CMP-S."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder, merge_contiguous
from repro.core.splits import NumericSplit
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestMergeContiguous:
    def test_runs(self):
        assert merge_contiguous([1, 2, 3, 7, 9, 10]) == [(1, 3), (7, 7), (9, 10)]
        assert merge_contiguous([]) == []
        assert merge_contiguous([4]) == [(4, 4)]


class TestCMPSEndToEnd:
    def test_counts_consistent_with_routing(self, f2_small, fast_config):
        result = CMPSBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_accuracy_close_to_exact(self, f2_small, fast_config):
        cmp_acc = accuracy(CMPSBuilder(fast_config).build(f2_small).tree, f2_small)
        exact_acc = accuracy(SprintBuilder(fast_config).build(f2_small).tree, f2_small)
        assert cmp_acc > exact_acc - 0.03

    def test_root_split_matches_exact_on_clean_data(self, two_blob, fast_config):
        # x0 > 0 decides the class: both algorithms must split on x0 near 0.
        cmp_tree = CMPSBuilder(fast_config).build(two_blob).tree
        exact_tree = SprintBuilder(fast_config).build(two_blob).tree
        assert isinstance(cmp_tree.root.split, NumericSplit)
        assert cmp_tree.root.split.attr == 0
        assert exact_tree.root.split.attr == 0
        assert abs(cmp_tree.root.split.threshold) < 0.1
        # Exact resolution: CMP's threshold is a data value, like SPRINT's.
        assert cmp_tree.root.split.threshold in two_blob.column(0)

    def test_one_scan_per_level_plus_setup(self, f2_small, fast_config):
        result = CMPSBuilder(fast_config).build(f2_small)
        rounds = result.stats.io.scans
        # Two setup scans (quantiling + root histograms) plus at most one
        # scan per grown level.
        assert rounds <= result.tree.depth + 2

    def test_deterministic(self, f2_small, fast_config):
        a = CMPSBuilder(fast_config).build(f2_small)
        b = CMPSBuilder(fast_config).build(f2_small)
        assert a.tree.render() == b.tree.render()
        assert a.stats.io.scans == b.stats.io.scans

    def test_min_records_respected(self, f2_small, fast_config):
        cfg = fast_config.with_(min_records=200)
        tree = CMPSBuilder(cfg).build(f2_small).tree
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_records >= 200

    def test_max_depth_respected(self, f2_small, fast_config):
        cfg = fast_config.with_(max_depth=3)
        tree = CMPSBuilder(cfg).build(f2_small).tree
        assert tree.depth <= 3

    def test_pure_node_becomes_leaf(self, fast_config, rng):
        from repro.data.dataset import Dataset
        from repro.data.schema import Schema, continuous

        X = rng.normal(size=(500, 2))
        y = np.zeros(500, dtype=np.int64)
        y[X[:, 0] > 0] = 1
        ds = Dataset(X, y, Schema((continuous("a"), continuous("b")), ("x", "y")))
        tree = CMPSBuilder(fast_config).build(ds).tree
        # After the first exact split the children are pure.
        assert tree.depth <= 3
        assert accuracy(tree, ds) == 1.0

    def test_categorical_split(self, mixed_types, fast_config):
        result = CMPSBuilder(fast_config).build(mixed_types)
        assert_tree_consistent(result.tree, mixed_types)
        # Category parity decides the class: the root must split on it and
        # reach perfect accuracy quickly.
        assert result.tree.root.split.attributes() == (1,)
        assert accuracy(result.tree, mixed_types) == 1.0

    def test_memory_tracked(self, f2_small, fast_config):
        result = CMPSBuilder(fast_config).build(f2_small)
        assert result.stats.memory.peak > 0
        # Everything transient should have been released.
        assert result.stats.memory.current == 0

    def test_aux_nid_charged_per_scan(self, f2_small, fast_config):
        result = CMPSBuilder(fast_config).build(f2_small)
        n = f2_small.n_records
        scans = result.stats.io.scans
        # nid is read+written on every scan except the quantile pass.
        assert result.stats.io.aux_records_read == (scans - 1) * n

    def test_empty_dataset_rejected(self, fast_config):
        from repro.data.dataset import Dataset
        from repro.data.schema import Schema, continuous

        ds = Dataset(
            np.empty((0, 1)),
            np.empty(0, dtype=np.int64),
            Schema((continuous("a"),), ("x", "y")),
        )
        with pytest.raises(ValueError, match="empty"):
            CMPSBuilder(fast_config).build(ds)


class TestCMPSPruning:
    def test_public_pruning_shrinks_tree(self, f2_small, fast_config):
        plain = CMPSBuilder(fast_config).build(f2_small)
        pruned = CMPSBuilder(fast_config.with_(prune="public")).build(f2_small)
        assert pruned.tree.n_nodes <= plain.tree.n_nodes
        assert_tree_consistent_counts_only(pruned.tree)

    def test_mdl_pruning_shrinks_tree(self, f2_small, fast_config):
        plain = CMPSBuilder(fast_config).build(f2_small)
        pruned = CMPSBuilder(fast_config.with_(prune="mdl")).build(f2_small)
        assert pruned.tree.n_nodes <= plain.tree.n_nodes

    def test_pruned_accuracy_not_catastrophic(self, f2_small, fast_config):
        pruned = CMPSBuilder(fast_config.with_(prune="public")).build(f2_small)
        assert accuracy(pruned.tree, f2_small) > 0.85


def assert_tree_consistent_counts_only(tree) -> None:
    """Internal node counts must equal the sum of their children's."""
    for node in tree.iter_nodes():
        if not node.is_leaf:
            left, right = node.children()
            np.testing.assert_allclose(
                node.class_counts, left.class_counts + right.class_counts
            )
