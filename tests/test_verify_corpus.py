"""Replay every committed corpus case under ``tests/data/corpus/``.

Each case records the exact dataset, config, builders and checks of a
past (or expected-clean tricky) verification run plus the error findings
observed at capture time.  Replaying must reproduce those findings
verbatim, twice, so the whole harness stays deterministic end to end —
a shrunk fuzz failure committed here keeps failing for the same reason
until the bug is fixed, then its recorded findings are updated to [].
"""

import glob
import os

import pytest

from repro.verify.fuzz import load_case, replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "corpus")
CASE_PATHS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_has_committed_cases():
    # The two seeded tricky cases are part of the repo; an empty corpus
    # means the checkout (or a cleanup) lost them.
    assert len(CASE_PATHS) >= 2


@pytest.mark.parametrize(
    "path", CASE_PATHS, ids=[os.path.basename(p) for p in CASE_PATHS]
)
def test_replay_is_deterministic_and_matches_record(path):
    case = load_case(path)
    first = [str(f) for f in replay_case(case)]
    assert first == case.findings, (
        f"{case.name}: replay diverged from recorded findings; if a fix "
        "changed the outcome on purpose, update the case's findings list"
    )
    second = [str(f) for f in replay_case(case)]
    assert second == first, f"{case.name}: two replays disagreed"
