"""Tests for tree JSON serialization and DOT export."""

import json

import numpy as np
import pytest

from repro.core.cmp_full import CMPBuilder
from repro.core.serialize import (
    split_from_dict,
    split_to_dict,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit


class TestSplitRoundTrip:
    @pytest.mark.parametrize(
        "split",
        [
            NumericSplit(3, 42.5),
            CategoricalSplit(1, (True, False, True)),
            LinearSplit(0, 2, b=0.93, c=95796.0),
            LinearSplit(0, 2, b=-1.5, c=10.0, a=-1.0),
        ],
    )
    def test_round_trip(self, split):
        assert split_from_dict(split_to_dict(split)) == split

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown split kind"):
            split_from_dict({"kind": "mystery"})

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            split_to_dict(object())  # type: ignore[arg-type]


class TestTreeRoundTrip:
    @pytest.fixture(scope="class")
    def trained(self, request):
        diagonal = request.getfixturevalue("diagonal")
        from repro.config import BuilderConfig

        cfg = BuilderConfig(n_intervals=32, max_depth=6, min_records=20)
        return CMPBuilder(cfg).build(diagonal).tree, diagonal

    def test_dict_round_trip_preserves_predictions(self, trained):
        tree, dataset = trained
        clone = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_array_equal(clone.predict(dataset.X), tree.predict(dataset.X))
        assert clone.render() == tree.render()

    def test_json_round_trip(self, trained):
        tree, dataset = trained
        text = tree_to_json(tree, indent=2)
        json.loads(text)  # valid JSON
        clone = tree_from_json(text)
        np.testing.assert_array_equal(clone.predict(dataset.X), tree.predict(dataset.X))

    def test_schema_travels(self, trained):
        tree, __ = trained
        clone = tree_from_json(tree_to_json(tree))
        assert clone.schema.class_labels == tree.schema.class_labels
        assert [a.name for a in clone.schema.attributes] == [
            a.name for a in tree.schema.attributes
        ]

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="not a serialized"):
            tree_from_dict({"format": "something-else"})


class TestDotExport:
    def test_contains_nodes_and_edges(self, trained_tree):
        dot = tree_to_dot(trained_tree)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot
        assert 'label="yes"' in dot and 'label="no"' in dot

    def test_max_depth_truncates(self, trained_tree):
        full = tree_to_dot(trained_tree)
        truncated = tree_to_dot(trained_tree, max_depth=1)
        assert len(truncated) < len(full)
        assert '"..."' in truncated or truncated.count("->") <= 2

    def test_leaf_labels_use_schema(self, trained_tree):
        dot = tree_to_dot(trained_tree)
        assert any(lbl in dot for lbl in trained_tree.schema.class_labels)


@pytest.fixture(scope="module")
def trained_tree(diagonal):
    from repro.config import BuilderConfig

    cfg = BuilderConfig(n_intervals=32, max_depth=4, min_records=20)
    return CMPBuilder(cfg).build(diagonal).tree


class TestAllKindsRoundTrip:
    """A tree mixing numeric, categorical, and linear splits survives the
    JSON round trip, and the deserialized tree's compiled engine predicts
    exactly what the original does."""

    def test_mixed_tree_round_trip_predicts_identically(self):
        from repro.core.compiled import tree_fingerprint
        from repro.eval.treegen import random_batch, random_tree

        tree = random_tree(
            depth=6, seed=40, p_numeric=0.4, p_categorical=0.3, p_linear=0.3
        )
        kinds = {type(n.split).__name__ for n in tree.iter_nodes() if n.split}
        assert kinds == {"NumericSplit", "CategoricalSplit", "LinearSplit"}

        clone = tree_from_json(tree_to_json(tree))
        assert tree_fingerprint(clone) == tree_fingerprint(tree)

        X = random_batch(tree.schema, 2000, seed=41, unseen_frac=0.1)
        np.testing.assert_array_equal(clone.predict(X), tree.predict(X))
        np.testing.assert_array_equal(
            clone.predict_proba(X), tree.predict_proba(X)
        )
        np.testing.assert_array_equal(clone.apply(X), tree.apply(X))

    def test_numeric_candidate_count_round_trips(self):
        s = NumericSplit(2, 7.5, n_candidates=13)
        assert split_from_dict(split_to_dict(s)) == s
        assert split_from_dict(split_to_dict(s)).n_candidates == 13
