"""Tests for tree JSON serialization and DOT export."""

import json

import numpy as np
import pytest

from repro.core.cmp_full import CMPBuilder
from repro.core.serialize import (
    split_from_dict,
    split_to_dict,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)
from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit


class TestSplitRoundTrip:
    @pytest.mark.parametrize(
        "split",
        [
            NumericSplit(3, 42.5),
            CategoricalSplit(1, (True, False, True)),
            LinearSplit(0, 2, b=0.93, c=95796.0),
            LinearSplit(0, 2, b=-1.5, c=10.0, a=-1.0),
        ],
    )
    def test_round_trip(self, split):
        assert split_from_dict(split_to_dict(split)) == split

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown split kind"):
            split_from_dict({"kind": "mystery"})

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            split_to_dict(object())  # type: ignore[arg-type]


class TestTreeRoundTrip:
    @pytest.fixture(scope="class")
    def trained(self, request):
        diagonal = request.getfixturevalue("diagonal")
        from repro.config import BuilderConfig

        cfg = BuilderConfig(n_intervals=32, max_depth=6, min_records=20)
        return CMPBuilder(cfg).build(diagonal).tree, diagonal

    def test_dict_round_trip_preserves_predictions(self, trained):
        tree, dataset = trained
        clone = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_array_equal(clone.predict(dataset.X), tree.predict(dataset.X))
        assert clone.render() == tree.render()

    def test_json_round_trip(self, trained):
        tree, dataset = trained
        text = tree_to_json(tree, indent=2)
        json.loads(text)  # valid JSON
        clone = tree_from_json(text)
        np.testing.assert_array_equal(clone.predict(dataset.X), tree.predict(dataset.X))

    def test_schema_travels(self, trained):
        tree, __ = trained
        clone = tree_from_json(tree_to_json(tree))
        assert clone.schema.class_labels == tree.schema.class_labels
        assert [a.name for a in clone.schema.attributes] == [
            a.name for a in tree.schema.attributes
        ]

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="not a serialized"):
            tree_from_dict({"format": "something-else"})


class TestDotExport:
    def test_contains_nodes_and_edges(self, trained_tree):
        dot = tree_to_dot(trained_tree)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot
        assert 'label="yes"' in dot and 'label="no"' in dot

    def test_max_depth_truncates(self, trained_tree):
        full = tree_to_dot(trained_tree)
        truncated = tree_to_dot(trained_tree, max_depth=1)
        assert len(truncated) < len(full)
        assert '"..."' in truncated or truncated.count("->") <= 2

    def test_leaf_labels_use_schema(self, trained_tree):
        dot = tree_to_dot(trained_tree)
        assert any(lbl in dot for lbl in trained_tree.schema.class_labels)


@pytest.fixture(scope="module")
def trained_tree(diagonal):
    from repro.config import BuilderConfig

    cfg = BuilderConfig(n_intervals=32, max_depth=4, min_records=20)
    return CMPBuilder(cfg).build(diagonal).tree
