"""Metamorphic battery: clean builders must pass every invariance check,
the run must be replayable bit-for-bit, and broken invariants must fire."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous
from repro.eval.treegen import adversarial_dataset
from repro.verify.metamorphic import METAMORPHIC_CHECKS, run_metamorphic

VERIFY_CONFIG = BuilderConfig(
    n_intervals=16, max_depth=6, min_records=25, reservoir_capacity=5000
)
ALL_BUILDERS = ("CMP-S", "CMP-B", "CMP", "CLOUDS", "SLIQ")


class TestCleanRuns:
    def test_strict_checks_pass_everywhere(self):
        ds = adversarial_dataset("mixed", n=250, seed=2)
        report = run_metamorphic(
            ds,
            VERIFY_CONFIG,
            builders=ALL_BUILDERS,
            checks=("shuffle", "duplicate", "scale_pow2", "constant_categorical"),
            seed=2,
        )
        errors = [f for f in report.findings if f.severity == "error"]
        assert not errors, "\n".join(str(f) for f in errors)
        assert all(row["status"] == "ok" for row in report.rows)

    def test_full_battery_has_no_errors(self):
        ds = adversarial_dataset("ties", n=250, seed=4)
        report = run_metamorphic(ds, VERIFY_CONFIG, builders=("CMP-S", "SLIQ"))
        assert report.ok
        ran = {row["check"] for row in report.rows}
        assert ran == set(METAMORPHIC_CHECKS)

    def test_builders_needing_two_continuous_are_skipped(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        ds = Dataset(
            x[:, None],
            (x > 0).astype(np.int64),
            Schema((continuous("only"),), ("a", "b")),
        )
        report = run_metamorphic(
            ds, VERIFY_CONFIG, builders=ALL_BUILDERS, checks=("shuffle",)
        )
        assert report.ok
        ran = {row["builder"] for row in report.rows}
        assert "CMP-B" not in ran and "CMP" not in ran


class TestDeterminism:
    def test_same_seed_replays_identically(self):
        ds = adversarial_dataset("near_boundary", n=200, seed=5)
        kw = dict(builders=("CMP-S", "CLOUDS"), seed=5)
        a = run_metamorphic(ds, VERIFY_CONFIG, **kw)
        b = run_metamorphic(ds, VERIFY_CONFIG, **kw)
        assert [str(f) for f in a.findings] == [str(f) for f in b.findings]
        assert a.rows == b.rows


class TestDetectionPower:
    def test_order_dependence_is_caught(self, monkeypatch):
        # Sabotage determinism: make CLOUDS see row order by seeding its
        # reservoir from the first record's bits.  The shuffle invariance
        # check must fail.
        import repro.baselines.clouds as clouds_mod

        original = clouds_mod.CloudsBuilder._build

        def order_sensitive(self, dataset, stats):
            # Position-weighted sum: permutation-sensitive even when the
            # profile is dominated by duplicated atom values.
            pos = np.dot(dataset.X[:, 0], np.arange(1, dataset.n_records + 1))
            jitter = (float(pos) % 7.0) * 1e-3
            ds = Dataset(
                dataset.X + jitter, dataset.y, dataset.schema
            )
            return original(self, ds, stats)

        monkeypatch.setattr(clouds_mod.CloudsBuilder, "_build", order_sensitive)
        ds = adversarial_dataset("mixed", n=250, seed=2)
        report = run_metamorphic(
            ds, VERIFY_CONFIG, builders=("CLOUDS",), checks=("shuffle",), seed=2
        )
        assert not report.ok

    def test_unknown_check_rejected(self):
        ds = adversarial_dataset("mixed", n=100, seed=0)
        with pytest.raises(ValueError, match="unknown check"):
            run_metamorphic(ds, VERIFY_CONFIG, checks=("nope",))
