"""End-to-end tests for the full CMP (linear-combination splits)."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.splits import LinearSplit
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestCMPLinear:
    def test_finds_linear_split_on_diagonal(self, diagonal, fast_config):
        result = CMPBuilder(fast_config).build(diagonal)
        assert result.stats.linear_splits >= 1
        linear_nodes = [
            n
            for n in result.tree.iter_nodes()
            if n.split is not None and isinstance(n.split, LinearSplit)
        ]
        assert linear_nodes
        # The discovered line approximates x + y <= 1.
        split = linear_nodes[0].split
        ratio = split.b / split.a
        assert 0.6 < ratio < 1.6
        assert 0.7 < split.c / split.a / (1 + ratio) * 2 < 1.3

    def test_linear_tree_much_smaller_than_univariate(self, diagonal, fast_config):
        cmp_tree = CMPBuilder(fast_config).build(diagonal).tree
        exact_tree = SprintBuilder(fast_config).build(diagonal).tree
        assert cmp_tree.n_nodes < exact_tree.n_nodes / 2
        assert accuracy(cmp_tree, diagonal) >= accuracy(exact_tree, diagonal) - 0.02

    def test_counts_consistent_with_routing(self, diagonal, fast_config):
        result = CMPBuilder(fast_config).build(diagonal)
        assert_tree_consistent(result.tree, diagonal)

    def test_function_f_consistency_and_lines(self, ff_small, fast_config):
        cfg = fast_config.with_(max_depth=10)
        result = CMPBuilder(cfg).build(ff_small)
        assert_tree_consistent(result.tree, ff_small)
        assert accuracy(result.tree, ff_small) > 0.97

    def test_no_lines_on_uncorrelated_data(self, two_blob, fast_config):
        # x0 alone separates the classes: the trigger never fires.
        result = CMPBuilder(fast_config).build(two_blob)
        assert result.stats.linear_splits == 0

    def test_trigger_disables_linear(self, diagonal, fast_config):
        cfg = fast_config.with_(linear_trigger_gini=0.99)
        result = CMPBuilder(cfg).build(diagonal)
        assert result.stats.linear_splits == 0

    def test_min_records_gate(self, diagonal, fast_config):
        cfg = fast_config.with_(linear_min_records=10**9)
        result = CMPBuilder(cfg).build(diagonal)
        assert result.stats.linear_splits == 0

    def test_acceptance_ratio_gate(self, diagonal, fast_config):
        # Requiring the line to be 1000x better than univariate blocks it.
        cfg = fast_config.with_(linear_accept_ratio=0.001)
        result = CMPBuilder(cfg).build(diagonal)
        assert result.stats.linear_splits == 0

    def test_deterministic(self, diagonal, fast_config):
        a = CMPBuilder(fast_config).build(diagonal)
        b = CMPBuilder(fast_config).build(diagonal)
        assert a.tree.render() == b.tree.render()

    def test_inherits_cmp_b_behaviour(self, f2_small, fast_config):
        # Without strong linear structure CMP behaves like CMP-B.
        result = CMPBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)
        assert accuracy(result.tree, f2_small) > 0.9
