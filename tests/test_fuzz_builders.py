"""Property-based fuzzing: every builder stays consistent on adversarial data.

Hypothesis generates small datasets full of edge cases — heavy ties,
constant columns, tiny classes, duplicate records — and every builder must
(1) finish, (2) produce a tree whose recorded per-leaf class counts match
actual routing, and (3) classify training data no worse than majority
voting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sliq import SliqBuilder
from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


@st.composite
def tiny_datasets(draw):
    n = draw(st.integers(min_value=60, max_value=240))
    p = draw(st.integers(min_value=2, max_value=4))
    c = draw(st.integers(min_value=2, max_value=3))
    with_categorical = draw(st.booleans())
    # Values from a small integer pool: lots of ties and atoms.
    pool = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    X = rng.integers(0, pool, size=(n, p)).astype(np.float64)
    # Labels correlate with the first attribute plus noise, but Hypothesis
    # may shrink toward degenerate all-one-class datasets too.
    noise = draw(st.floats(min_value=0.0, max_value=1.0))
    y = ((X[:, 0] > pool / 2) ^ (rng.random(n) < noise * 0.5)).astype(np.int64)
    y = np.clip(y, 0, c - 1)
    attrs = [continuous(f"x{j}") for j in range(p)]
    if with_categorical:
        k = draw(st.integers(min_value=2, max_value=5))
        attrs.append(categorical("cat", tuple(f"v{i}" for i in range(k))))
        X = np.column_stack([X, rng.integers(0, k, n).astype(np.float64)])
    schema = Schema(tuple(attrs), tuple(f"c{k}" for k in range(c)))
    return Dataset(X, y, schema)


CFG = BuilderConfig(
    n_intervals=8, max_depth=5, min_records=10, reservoir_capacity=500
)

FUZZ_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _check(builder_cls, dataset):
    result = builder_cls(CFG).build(dataset)
    assert_tree_consistent(result.tree, dataset)
    majority = dataset.class_counts().max() / dataset.n_records
    assert accuracy(result.tree, dataset) >= majority - 1e-9
    assert result.stats.memory.current == 0


class TestFuzz:
    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_cmp_s(self, dataset):
        _check(CMPSBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_cmp_b(self, dataset):
        _check(CMPBBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_cmp_full(self, dataset):
        _check(CMPBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_clouds(self, dataset):
        _check(CloudsBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_rainforest(self, dataset):
        _check(RainForestBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_sprint(self, dataset):
        _check(SprintBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_sliq(self, dataset):
        _check(SliqBuilder, dataset)

    @given(tiny_datasets())
    @FUZZ_SETTINGS
    def test_exact_algorithms_agree(self, dataset):
        # SPRINT, SLIQ and RainForest implement the same exact algorithm.
        sprint = SprintBuilder(CFG).build(dataset).tree
        sliq = SliqBuilder(CFG).build(dataset).tree
        rf = RainForestBuilder(CFG).build(dataset).tree
        assert sprint.render() == sliq.render() == rf.render()
