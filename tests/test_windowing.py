"""Tests for the C4.5-style windowing meta-builder."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.baselines.windowing import WindowingBuilder
from repro.eval.metrics import accuracy


class TestWindowing:
    def test_learns_separable_data(self, two_blob, fast_config):
        result = WindowingBuilder(fast_config).build(two_blob)
        assert accuracy(result.tree, two_blob) > 0.98

    def test_close_to_full_data_accuracy(self, f2_small, fast_config):
        windowed = WindowingBuilder(fast_config, initial_fraction=0.15).build(f2_small)
        full = SprintBuilder(fast_config).build(f2_small)
        w_acc = accuracy(windowed.tree, f2_small)
        f_acc = accuracy(full.tree, f2_small)
        # §1.1: approximate techniques "can carry a significant loss of
        # accuracy" — windowing must get close but may not match.
        assert w_acc > f_acc - 0.06
        assert w_acc <= f_acc + 0.01

    def test_scan_accounting(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config, max_iterations=3).build(f2_small)
        # 1 sampling scan + one classification scan per iteration.
        assert 2 <= result.stats.io.scans <= 4
        # Window builds show up as auxiliary record I/O.
        assert result.stats.io.aux_records_read > 0

    def test_iteration_cap(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config, max_iterations=1).build(f2_small)
        assert result.stats.io.scans == 2

    def test_window_memory_tracked_and_released(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config).build(f2_small)
        assert result.stats.memory.peak > 0
        assert result.stats.memory.current == 0

    def test_parameter_validation(self, fast_config):
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, initial_fraction=0.0)
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, growth_fraction=2.0)
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, max_iterations=0)

    def test_deterministic(self, f2_small, fast_config):
        a = WindowingBuilder(fast_config).build(f2_small)
        b = WindowingBuilder(fast_config).build(f2_small)
        assert a.tree.render() == b.tree.render()
