"""Tests for the C4.5-style windowing meta-builder."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.baselines.windowing import WindowingBuilder
from repro.eval.metrics import accuracy


class TestWindowing:
    def test_learns_separable_data(self, two_blob, fast_config):
        result = WindowingBuilder(fast_config).build(two_blob)
        assert accuracy(result.tree, two_blob) > 0.98

    def test_close_to_full_data_accuracy(self, f2_small, fast_config):
        windowed = WindowingBuilder(fast_config, initial_fraction=0.15).build(f2_small)
        full = SprintBuilder(fast_config).build(f2_small)
        w_acc = accuracy(windowed.tree, f2_small)
        f_acc = accuracy(full.tree, f2_small)
        # §1.1: approximate techniques "can carry a significant loss of
        # accuracy" — windowing must get close but may not match.
        assert w_acc > f_acc - 0.06
        assert w_acc <= f_acc + 0.01

    def test_scan_accounting(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config, max_iterations=3).build(f2_small)
        # 1 sampling scan + one classification scan per iteration.
        assert 2 <= result.stats.io.scans <= 4
        # Window builds show up as auxiliary record I/O.
        assert result.stats.io.aux_records_read > 0

    def test_iteration_cap(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config, max_iterations=1).build(f2_small)
        assert result.stats.io.scans == 2

    def test_window_memory_tracked_and_released(self, f2_small, fast_config):
        result = WindowingBuilder(fast_config).build(f2_small)
        assert result.stats.memory.peak > 0
        assert result.stats.memory.current == 0

    def test_parameter_validation(self, fast_config):
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, initial_fraction=0.0)
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, growth_fraction=2.0)
        with pytest.raises(ValueError):
            WindowingBuilder(fast_config, max_iterations=0)

    def test_deterministic(self, f2_small, fast_config):
        a = WindowingBuilder(fast_config).build(f2_small)
        b = WindowingBuilder(fast_config).build(f2_small)
        assert a.tree.render() == b.tree.render()

    def test_ledger_released_before_each_reallocate(
        self, f2_small, fast_config, monkeypatch
    ):
        """Regression: every window re-allocation must be preceded by a
        release of the previous window's ledger entry, so the ledger holds
        exactly one live window at a time and ends the build balanced."""
        from repro.io.metrics import MemoryTracker

        events: list[tuple[str, int]] = []
        orig_alloc = MemoryTracker.allocate
        orig_release = MemoryTracker.release

        def spy_alloc(self, name, nbytes):
            if name == "window/records":
                events.append(("alloc", int(nbytes)))
            return orig_alloc(self, name, nbytes)

        def spy_release(self, name):
            if name == "window/records":
                events.append(("release", 0))
            return orig_release(self, name)

        monkeypatch.setattr(MemoryTracker, "allocate", spy_alloc)
        monkeypatch.setattr(MemoryTracker, "release", spy_release)

        result = WindowingBuilder(fast_config, initial_fraction=0.1).build(f2_small)

        allocs = [e for e in events if e[0] == "alloc"]
        assert len(allocs) >= 2, "expected more than one windowing iteration"
        # Strict alternation: release, alloc, release, alloc, ..., release.
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "release"
        assert kinds[-1] == "release"
        for prev, cur in zip(kinds, kinds[1:]):
            assert prev != cur, f"ledger event sequence not alternating: {kinds}"
        # Balanced ledger; peak reflects the largest single window, not a
        # sum of leaked windows.
        assert result.stats.memory.current == 0
        sizes = [nbytes for _, nbytes in allocs]
        assert sizes == sorted(sizes), "windows should only grow"
        assert result.stats.memory.peak >= max(sizes)
