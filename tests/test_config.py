"""Tests for BuilderConfig validation."""

import pytest

from repro.config import DEFAULT_CONFIG, BuilderConfig


class TestBuilderConfig:
    def test_defaults_match_paper(self):
        # "Our experiments divide an attribute domain into 100 to 120
        # intervals" and "limiting N ... to at most 2 is enough".
        assert DEFAULT_CONFIG.n_intervals == 100
        assert DEFAULT_CONFIG.max_alive == 2

    def test_with_returns_new_instance(self):
        cfg = DEFAULT_CONFIG.with_(max_depth=5)
        assert cfg.max_depth == 5
        assert DEFAULT_CONFIG.max_depth != 5 or True  # original untouched
        assert cfg is not DEFAULT_CONFIG

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_intervals": 1},
            {"max_alive": -1},
            {"max_depth": 0},
            {"prune": "bogus"},
            {"clouds_mode": "x"},
            {"linear_accept_ratio": 0.0},
            {"linear_accept_ratio": 1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BuilderConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.max_depth = 3  # type: ignore[misc]
