"""Tests for class histograms (continuous and categorical)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gini import gini_partition
from repro.core.histogram import CategoryHistogram, ClassHistogram


class TestClassHistogram:
    def make(self):
        hist = ClassHistogram(np.array([1.0, 2.0]), n_classes=2)
        hist.update(np.array([0.5, 1.0, 1.5, 2.5, 2.5]), np.array([0, 0, 1, 1, 0]))
        return hist

    def test_counts(self):
        hist = self.make()
        np.testing.assert_array_equal(
            hist.counts, [[2.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        )
        assert hist.n_records == 5
        np.testing.assert_array_equal(hist.totals(), [3.0, 2.0])

    def test_cumulative_and_cum_below(self):
        hist = self.make()
        cum = hist.cumulative()
        np.testing.assert_array_equal(cum[-1], hist.totals())
        np.testing.assert_array_equal(hist.cum_below(0), [0.0, 0.0])
        np.testing.assert_array_equal(hist.cum_below(2), cum[1])

    def test_boundary_ginis_match_direct(self):
        hist = self.make()
        bg = hist.boundary_ginis()
        cum = hist.cumulative()
        for k in range(2):
            expected = gini_partition(cum[k], hist.totals() - cum[k])
            assert bg[k] == pytest.approx(expected)

    def test_single_interval_no_boundaries(self):
        hist = ClassHistogram(np.empty(0), 2)
        hist.update(np.array([1.0, 2.0]), np.array([0, 1]))
        assert len(hist.boundary_ginis()) == 0

    def test_atomic_detection(self):
        hist = ClassHistogram(np.array([1.0]), 2)
        hist.update(np.array([0.5, 0.5, 0.5, 2.0, 3.0]), np.array([0, 1, 0, 1, 1]))
        atomic = hist.atomic_intervals()
        assert atomic[0]  # only value 0.5 in the first interval
        assert not atomic[1]  # values 2 and 3

    def test_empty_intervals_not_atomic(self):
        hist = ClassHistogram(np.array([1.0]), 2)
        hist.update(np.array([2.0, 3.0]), np.array([0, 1]))
        atomic = hist.atomic_intervals()
        assert not atomic[0]

    def test_merge_preserves_extrema(self):
        a = ClassHistogram(np.array([1.0]), 2)
        b = ClassHistogram(np.array([1.0]), 2)
        a.update(np.array([0.5]), np.array([0]))
        b.update(np.array([0.2]), np.array([1]))
        a.merge_from(b)
        assert a.vmin[0] == 0.2
        assert a.vmax[0] == 0.5
        assert a.n_records == 2

    def test_merge_requires_same_edges(self):
        a = ClassHistogram(np.array([1.0]), 2)
        b = ClassHistogram(np.array([2.0]), 2)
        with pytest.raises(ValueError, match="share edges"):
            a.merge_from(b)

    def test_update_empty_batch(self):
        hist = ClassHistogram(np.array([1.0]), 2)
        hist.update(np.empty(0), np.empty(0, dtype=int))
        assert hist.n_records == 0


class TestCategoryHistogram:
    def test_counts(self):
        hist = CategoryHistogram(3, 2)
        hist.update(np.array([0, 1, 1, 2]), np.array([0, 1, 1, 0]))
        np.testing.assert_array_equal(hist.counts, [[1, 0], [0, 2], [1, 0]])

    def test_two_class_subset_split_optimal(self, rng):
        # For two classes the split must match exhaustive subset search.
        k = 5
        codes = rng.integers(0, k, 400)
        labels = rng.integers(0, 2, 400)
        hist = CategoryHistogram(k, 2)
        hist.update(codes, labels)
        __, got = hist.best_subset_split()

        best = np.inf
        for r in range(1, k):
            for subset in itertools.combinations(range(k), r):
                mask = np.isin(codes, subset)
                left = np.bincount(labels[mask], minlength=2)
                right = np.bincount(labels[~mask], minlength=2)
                if left.sum() and right.sum():
                    best = min(best, gini_partition(left, right))
        assert got == pytest.approx(best)

    def test_split_mask_excludes_empty_categories(self):
        hist = CategoryHistogram(4, 2)
        hist.update(np.array([0, 0, 1, 1]), np.array([0, 0, 1, 1]))
        mask, g = hist.best_subset_split()
        assert not mask[2] and not mask[3]
        assert g == pytest.approx(0.0)

    def test_single_category_raises(self):
        hist = CategoryHistogram(3, 2)
        hist.update(np.array([1, 1, 1]), np.array([0, 1, 0]))
        with pytest.raises(ValueError, match="fewer than two"):
            hist.best_subset_split()

    def test_merge(self):
        a = CategoryHistogram(2, 2)
        b = CategoryHistogram(2, 2)
        a.update(np.array([0]), np.array([0]))
        b.update(np.array([1]), np.array([1]))
        a.merge_from(b)
        assert a.counts.sum() == 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 2)),
            min_size=6,
            max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_multiclass_split_is_valid(self, pairs):
        codes = np.array([c for c, _ in pairs])
        labels = np.array([l for _, l in pairs])
        hist = CategoryHistogram(5, 3)
        hist.update(codes, labels)
        populated = np.unique(codes)
        if len(populated) < 2:
            return
        mask, g = hist.best_subset_split()
        left = np.isin(codes, np.nonzero(mask)[0])
        # Both sides populated, and the gini matches a direct evaluation.
        assert left.any() and (~left).any()
        lcounts = np.bincount(labels[left], minlength=3)
        rcounts = np.bincount(labels[~left], minlength=3)
        assert g == pytest.approx(gini_partition(lcounts, rcounts))
