"""End-to-end observability tests: tracing must observe, never steer.

The hard invariants:

* a traced build is **bit-identical** to an untraced one, for every
  builder, serial and chunk-parallel;
* the trace's ``scan`` span count equals ``IOStats.scans`` (the
  structural cross-check ``cmp-repro inspect-trace`` enforces);
* retries under fault injection surface as ``retry`` spans, one per
  ``IOStats.read_retries``;
* the CLI round-trips: ``--trace``/``--metrics`` write files that
  ``inspect-trace`` and a Prometheus parser accept.
"""

from __future__ import annotations

import json

import pytest

from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal
from repro.io.faults import FaultInjector, FaultyDataset
from repro.obs import (
    Tracer,
    load_trace_jsonl,
    summarize_trace,
)

BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


@pytest.fixture(scope="module")
def dataset():
    return generate_agrawal("F2", 4_000, seed=11)


@pytest.fixture(scope="module")
def config():
    return BuilderConfig(max_depth=6)


class TestBitIdentity:
    @pytest.mark.parametrize("builder_cls", BUILDERS, ids=lambda c: c.name)
    @pytest.mark.parametrize("workers", [1, 3], ids=["serial", "parallel"])
    def test_traced_build_is_bit_identical(
        self, builder_cls, workers, dataset, config
    ):
        cfg = config.with_(scan_workers=workers)
        plain = builder_cls(cfg).build(dataset)
        tracer = Tracer()
        traced = builder_cls(cfg, tracer=tracer).build(dataset)
        assert tree_to_json(plain.tree) == tree_to_json(traced.tree)
        assert len(tracer.spans()) > 0
        # The untraced build recorded nothing anywhere.
        assert plain.stats.io.snapshot() == traced.stats.io.snapshot()


class TestScanCrossCheck:
    @pytest.mark.parametrize("builder_cls", BUILDERS, ids=lambda c: c.name)
    @pytest.mark.parametrize("workers", [1, 3], ids=["serial", "parallel"])
    def test_scan_spans_match_iostats(self, builder_cls, workers, dataset, config):
        tracer = Tracer()
        result = builder_cls(
            config.with_(scan_workers=workers), tracer=tracer
        ).build(dataset)
        spans = tracer.spans()
        scan_spans = [sp for sp in spans if sp.name == "scan"]
        assert len(scan_spans) == result.stats.io.scans
        build_spans = [sp for sp in spans if sp.name == "build"]
        assert len(build_spans) == 1
        assert build_spans[0].attrs["scans"] == result.stats.io.scans
        assert build_spans[0].attrs["builder"] == builder_cls.name

    def test_summarize_trace_consistent(self, dataset, config):
        tracer = Tracer()
        CMPBuilder(config, tracer=tracer).build(dataset)
        summary = summarize_trace(tracer.spans())
        assert summary.consistent
        (check,) = summary.builds
        assert check.builder == "CMP"
        assert check.counted_scans == check.recorded_scans
        # Each completed level traces exactly one scan; the prelude
        # (quantiling + root histogram) accounts for the rest.
        per_level = check.scans_per_level
        assert all(per_level[lv] == 1 for lv in per_level if lv != -1)
        assert sum(per_level.values()) == check.counted_scans

    def test_parallel_scan_spans_carry_worker_children(self, dataset, config):
        tracer = Tracer()
        CMPBuilder(config.with_(scan_workers=3), tracer=tracer).build(dataset)
        spans = tracer.spans()
        scan_ids = {sp.span_id for sp in spans if sp.name == "scan"}
        batches = [sp for sp in spans if sp.name == "chunk_batch"]
        assert batches
        assert all(sp.parent_id in scan_ids for sp in batches)


class TestRetrySpans:
    def test_retry_spans_match_retry_count(self, config):
        base = generate_agrawal("F2", 2_000, seed=5)
        injector = FaultInjector(transient_rate=0.2, seed=9)
        faulty = FaultyDataset(base, injector)
        tracer = Tracer()
        # Small pages -> many chunks per scan, so the per-chunk fault
        # rate actually fires (same setup as tests/test_faults.py).
        result = CMPSBuilder(
            config.with_(scan_retries=3, page_records=10), tracer=tracer
        ).build(faulty)
        retries = [sp for sp in tracer.spans() if sp.name == "retry"]
        assert injector.total_injected > 0
        assert len(retries) == result.stats.io.read_retries
        for sp in retries:
            assert sp.attrs["attempt"] >= 1
            assert sp.attrs["backoff_ms"] >= 0
            assert sp.attrs["error"]


class TestCliRoundTrip:
    def test_trace_metrics_and_inspect(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        prom_path = tmp_path / "m.prom"
        json_path = tmp_path / "m.json"

        rc = main(
            [
                "demo",
                "--records",
                "2000",
                "--max-depth",
                "5",
                "--trace",
                str(trace_path),
                "--metrics",
                str(prom_path),
            ]
        )
        assert rc == 0
        spans = load_trace_jsonl(str(trace_path))
        assert any(sp.name == "build" for sp in spans)
        prom = prom_path.read_text()
        assert "# TYPE cmp_io_scans_total counter" in prom
        assert "cmp_build_total" in prom

        rc = main(["inspect-trace", str(trace_path), "--top", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cross-check: OK" in out
        assert "Per-phase rollup" in out

        rc = main(
            [
                "demo",
                "--records",
                "2000",
                "--max-depth",
                "5",
                "--metrics",
                str(json_path),
            ]
        )
        assert rc == 0
        data = json.loads(json_path.read_text())
        assert data["cmp_io_scans_total"]["type"] == "counter"

    def test_inspect_trace_missing_file(self, capsys):
        from repro.cli import main

        assert main(["inspect-trace", "/nonexistent/trace.jsonl"]) == 2

    def test_inspect_trace_detects_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        # A build span claiming 5 scans over a trace containing one.
        lines = [
            {"span_id": 0, "parent_id": None, "name": "build", "start_s": 0.0,
             "dur_s": 1.0, "attrs": {"builder": "CMP", "scans": 5}},
            {"span_id": 1, "parent_id": 0, "name": "scan", "start_s": 0.1,
             "dur_s": 0.2, "attrs": {}},
        ]
        path = tmp_path / "bad.jsonl"
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        rc = main(["inspect-trace", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "MISMATCH" in out

    def test_serve_bench_reports_percentiles(self, capsys):
        from repro.cli import main

        rc = main(
            ["serve-bench", "--records", "4000", "--batch", "1000", "--depth", "5"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "p50_latency_ms" in out
        assert "p90_latency_ms" in out
        assert "p99_latency_ms" in out


needs_fork = pytest.mark.skipif(
    not __import__(
        "repro.core.parallel", fromlist=["process_backend_available"]
    ).process_backend_available(),
    reason="fork start method unavailable",
)


@needs_fork
class TestProcessBackendContinuity:
    """Forked scan workers' spans are shipped home and grafted."""

    @pytest.fixture(scope="class")
    def traced(self, dataset, config):
        tracer = Tracer()
        cfg = config.with_(scan_workers=4, scan_backend="process")
        result = CMPSBuilder(cfg, tracer=tracer).build(dataset)
        return tracer, result

    def test_bit_identical_to_untraced(self, traced, dataset, config):
        _, result = traced
        cfg = config.with_(scan_workers=4, scan_backend="process")
        plain = CMPSBuilder(cfg).build(dataset)
        assert tree_to_json(plain.tree) == tree_to_json(result.tree)

    def test_worker_spans_carry_child_pids(self, traced):
        import os

        tracer, _ = traced
        batches = [sp for sp in tracer.spans() if sp.name == "chunk_batch"]
        assert batches
        pids = {sp.attrs["pid"] for sp in batches}
        assert os.getpid() not in pids

    def test_worker_spans_graft_under_scan_spans(self, traced):
        tracer, _ = traced
        by_id = {sp.span_id: sp for sp in tracer.spans()}
        for sp in tracer.spans():
            if sp.name == "chunk_batch":
                assert by_id[sp.parent_id].name == "scan"
            if sp.name == "kernel":
                assert by_id[sp.parent_id].name == "chunk_batch"

    def test_kernel_spans_shipped_when_native(self, traced):
        from repro.core import native_scan

        tracer, _ = traced
        kernels = [sp for sp in tracer.spans() if sp.name == "kernel"]
        if native_scan.available():
            assert kernels
            for sp in kernels:
                assert sp.attrs["calls"] > 0
        else:
            assert kernels == []

    def test_cross_check_consistent(self, traced):
        tracer, result = traced
        summary = summarize_trace(tracer.spans())
        assert summary.consistent
        (build,) = summary.builds
        assert build.counted_scans == result.stats.io.scans
        # Every chunk_batch landed under a worker pid bucket.
        n_batches = sum(
            1 for sp in tracer.spans() if sp.name == "chunk_batch"
        )
        assert sum(build.worker_batches_per_pid.values()) == n_batches

    def test_structurally_equivalent_to_thread_backend(self, dataset, config):
        def shape(backend):
            tracer = Tracer()
            cfg = config.with_(scan_workers=4, scan_backend=backend)
            CMPSBuilder(cfg, tracer=tracer).build(dataset)
            names = {}
            for sp in tracer.spans():
                if sp.name != "kernel":  # kernel spans need native counts
                    names[sp.name] = names.get(sp.name, 0) + 1
            return names

        assert shape("thread") == shape("process")

    def test_jsonl_round_trip_keeps_graft(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "proc_trace.jsonl"
        tracer.write_jsonl(str(path))
        loaded = load_trace_jsonl(str(path))
        assert summarize_trace(loaded).consistent
