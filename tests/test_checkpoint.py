"""Tests for level checkpoints and crash/resume equivalence.

The headline guarantee: kill a build after *any* scan, resume it from the
last level checkpoint, and you get a bit-identical serialized tree, the
same predictions and the same cumulative I/O totals as a build that was
never interrupted.
"""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    SlotCounter,
    build_fingerprint,
)
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal
from repro.io.faults import FaultInjector, FaultyDataset, InjectedCrash
from repro.io.metrics import BuildStats
from repro.io.storage import StoredDataset, write_table

CFG = BuilderConfig(n_intervals=16, max_depth=4, min_records=30)


@pytest.fixture(scope="module", params=["F2", "F7"])
def stored(request, tmp_path_factory):
    ds = generate_agrawal(request.param, 3_000, seed=5)
    path = tmp_path_factory.mktemp("ckpt") / f"{request.param}.cmptbl"
    write_table(ds, path)
    return StoredDataset(path)


class TestSlotCounter:
    def test_monotone_and_picklable(self):
        import pickle

        c = SlotCounter()
        assert [c(), c(), c()] == [1, 2, 3]
        c2 = pickle.loads(pickle.dumps(c))
        assert c2() == 4


class TestCheckpointManager:
    def fingerprint(self, dataset):
        return build_fingerprint("CMP-S", CFG, dataset)

    def test_round_trip(self, stored, tmp_path):
        mgr = CheckpointManager(tmp_path / "ck.bin", self.fingerprint(stored))
        assert not mgr.exists()
        stats = BuildStats()
        stats.io.begin_scan()
        stats.io.count_pages(3, 300)
        stats.memory.allocate("hist/x", 1000)
        stats.splits_resolved_exactly = 2
        mgr.save(4, {"nid": np.arange(5), "next_slot": SlotCounter(9)}, stats)
        assert mgr.exists()

        restored = BuildStats()
        level, state = mgr.load(restored)
        assert level == 4
        np.testing.assert_array_equal(state["nid"], np.arange(5))
        assert state["next_slot"]() == 9
        assert restored.io.scans == 1
        assert restored.io.pages_read == 3
        assert restored.memory.current == 1000
        assert restored.splits_resolved_exactly == 2
        assert restored.resumed_from_level == 4
        mgr.clear()
        assert not mgr.exists()
        mgr.clear()  # idempotent

    def test_corrupt_payload_rejected(self, stored, tmp_path):
        path = tmp_path / "ck.bin"
        mgr = CheckpointManager(path, self.fingerprint(stored))
        mgr.save(0, {}, BuildStats())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            mgr.load(BuildStats())

    def test_truncated_and_foreign_files_rejected(self, stored, tmp_path):
        path = tmp_path / "ck.bin"
        path.write_bytes(b"\x01")
        mgr = CheckpointManager(path, self.fingerprint(stored))
        with pytest.raises(CheckpointError, match="truncated"):
            mgr.load(BuildStats())
        path.write_bytes(b"NOTACKPT" + b"\x00" * 32)
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            mgr.load(BuildStats())

    def test_fingerprint_mismatch_rejected(self, stored, tmp_path):
        path = tmp_path / "ck.bin"
        CheckpointManager(path, self.fingerprint(stored)).save(0, {}, BuildStats())
        other = build_fingerprint("CMP-S", CFG.with_(n_intervals=32), stored)
        with pytest.raises(CheckpointError, match="different build"):
            CheckpointManager(path, other).load(BuildStats())

    def test_resilience_knobs_do_not_change_identity(self, stored, tmp_path):
        # The resuming run flips resume=True and may use another checkpoint
        # path; neither invalidates the checkpoint.
        path = tmp_path / "ck.bin"
        writer_cfg = CFG.with_(checkpoint_path=str(path))
        CheckpointManager(
            path, build_fingerprint("CMP-S", writer_cfg, stored)
        ).save(1, {}, BuildStats())
        reader_cfg = writer_cfg.with_(resume=True)
        level, __ = CheckpointManager(
            path, build_fingerprint("CMP-S", reader_cfg, stored)
        ).load(BuildStats())
        assert level == 1


@pytest.mark.parametrize("builder_cls", [CMPSBuilder, CMPBBuilder, CMPBuilder])
class TestCrashResumeEquivalence:
    def test_checkpointing_build_is_unchanged_and_cleans_up(
        self, builder_cls, stored, tmp_path
    ):
        base = builder_cls(CFG).build(stored)
        ck = tmp_path / "ck.bin"
        run = builder_cls(CFG.with_(checkpoint_path=str(ck))).build(stored)
        assert tree_to_json(run.tree) == tree_to_json(base.tree)
        assert run.stats.io.scans == base.stats.io.scans
        assert not ck.exists()

    def test_kill_after_every_scan_resumes_bit_identical(
        self, builder_cls, stored, tmp_path
    ):
        base = builder_cls(CFG).build(stored)
        base_json = tree_to_json(base.tree)
        total_scans = base.stats.io.scans
        X = stored.load().X
        base_pred = base.tree.predict(X)

        ck = tmp_path / "ck.bin"
        cfg = CFG.with_(checkpoint_path=str(ck), resume=True)
        resumed_at = []
        for kill in range(total_scans):
            ck.unlink(missing_ok=True)
            injector = FaultInjector(kill_at_scan=kill)
            with pytest.raises(InjectedCrash):
                builder_cls(cfg).build(FaultyDataset(stored, injector))
            result = builder_cls(cfg).build(stored)
            assert tree_to_json(result.tree) == base_json
            np.testing.assert_array_equal(result.tree.predict(X), base_pred)
            assert result.stats.io.scans == total_scans
            assert result.stats.io.pages_read == base.stats.io.pages_read
            resumed_at.append(result.stats.resumed_from_level)
        # Later kills must resume from later levels (the checkpoint
        # actually advances; -1 = no checkpoint yet, built from scratch).
        assert resumed_at == sorted(resumed_at)
        assert resumed_at[0] == -1
        assert resumed_at[-1] >= 1

    def test_resume_flag_without_checkpoint_builds_from_scratch(
        self, builder_cls, stored, tmp_path
    ):
        ck = tmp_path / "absent.bin"
        cfg = CFG.with_(checkpoint_path=str(ck), resume=True)
        base = builder_cls(CFG).build(stored)
        run = builder_cls(cfg).build(stored)
        assert tree_to_json(run.tree) == tree_to_json(base.tree)
        assert run.stats.resumed_from_level == -1


class TestBufferBudgetFallback:
    def test_overflow_falls_back_to_rescan_with_identical_tree(self, stored):
        base = CMPSBuilder(CFG).build(stored)
        tight = CMPSBuilder(CFG.with_(buffer_budget_bytes=2_048)).build(stored)
        assert tree_to_json(tight.tree) == tree_to_json(base.tree)
        assert tight.stats.buffer_overflow_rescans > 0
        # Each fallback costs extra sequential reads, never a wrong tree.
        assert tight.stats.io.pages_read > base.stats.io.pages_read

    def test_generous_budget_never_overflows(self, stored):
        roomy = CMPSBuilder(CFG.with_(buffer_budget_bytes=1 << 30)).build(stored)
        assert roomy.stats.buffer_overflow_rescans == 0
