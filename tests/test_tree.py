"""Tests for the decision-tree model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.splits import CategoricalSplit, NumericSplit
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.schema import Schema, categorical, continuous


def small_tree() -> DecisionTree:
    """x0 <= 0 -> class 0; else (x1 <= 1 -> class 1, else class 0)."""
    schema = Schema((continuous("x0"), continuous("x1")), ("a", "b"))
    account = TreeAccount()
    root = account.new_node(0, np.array([60.0, 40.0]))
    left = account.new_node(1, np.array([50.0, 0.0]))
    right = account.new_node(1, np.array([10.0, 40.0]))
    rl = account.new_node(2, np.array([2.0, 38.0]))
    rr = account.new_node(2, np.array([8.0, 2.0]))
    root.split = NumericSplit(0, 0.0)
    root.left, root.right = left, right
    right.split = NumericSplit(1, 1.0)
    right.left, right.right = rl, rr
    return DecisionTree(root, schema)


class TestNode:
    def test_leaf_properties(self):
        n = Node(0, 0, np.array([3.0, 7.0]))
        assert n.is_leaf
        assert n.majority_class == 1
        assert n.n_records == 10
        assert n.errors == 3
        assert 0 < n.gini < 0.5

    def test_children_raises_on_leaf(self):
        with pytest.raises(ValueError, match="is a leaf"):
            Node(0, 0, np.array([1.0, 1.0])).children()

    def test_make_leaf(self):
        t = small_tree()
        t.root.make_leaf()
        assert t.root.is_leaf
        assert t.n_nodes == 1


class TestDecisionTree:
    def test_structure_counts(self):
        t = small_tree()
        assert t.n_nodes == 5
        assert t.n_leaves == 3
        assert t.depth == 2

    def test_predict(self):
        t = small_tree()
        X = np.array([[-1.0, 0.0], [1.0, 0.5], [1.0, 2.0]])
        np.testing.assert_array_equal(t.predict(X), [0, 1, 0])

    def test_apply_routes_to_leaves(self):
        t = small_tree()
        X = np.array([[-1.0, 0.0], [1.0, 0.5], [1.0, 2.0]])
        ids = t.apply(X)
        leaves = {n.node_id for n in t.iter_nodes() if n.is_leaf}
        assert set(ids) <= leaves

    def test_every_record_reaches_exactly_one_leaf(self, rng):
        t = small_tree()
        X = rng.normal(size=(500, 2))
        ids = t.apply(X)
        assert len(ids) == 500
        leaves = {n.node_id for n in t.iter_nodes() if n.is_leaf}
        assert set(np.unique(ids)) <= leaves

    def test_preorder_traversal(self):
        t = small_tree()
        ids = [n.node_id for n in t.iter_nodes()]
        assert ids[0] == t.root.node_id
        assert len(ids) == 5

    def test_render_mentions_splits_and_leaves(self):
        text = small_tree().render()
        assert "x0 <= 0" in text
        assert "leaf" in text
        assert "Group" not in text  # uses this schema's labels
        assert text.count("\n") == 4

    def test_empty_predict(self):
        t = small_tree()
        assert len(t.predict(np.empty((0, 2)))) == 0

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 80), st.just(2)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_predict_matches_manual_routing(self, X):
        t = small_tree()
        pred = t.predict(X)
        for i, row in enumerate(X):
            node = t.root
            while not node.is_leaf:
                node = node.left if node.split.goes_left(row[None, :])[0] else node.right
            assert pred[i] == node.majority_class


class TestTreeAccount:
    def test_ids_are_sequential(self):
        acc = TreeAccount()
        a = acc.new_node(0, np.array([1.0]))
        b = acc.new_node(1, np.array([1.0]))
        assert (a.node_id, b.node_id) == (0, 1)
        assert acc.created == 2


def chain_tree(depth: int) -> DecisionTree:
    """A degenerate path tree: node i splits x0 <= i, left child is a leaf."""
    schema = Schema((continuous("x0"),), ("a", "b"))
    account = TreeAccount()
    root = account.new_node(0, np.array([depth + 1.0, depth + 1.0]))
    node = root
    for i in range(depth):
        node.split = NumericSplit(0, float(i))
        node.left = account.new_node(i + 1, np.array([1.0, 0.0]))
        node.right = account.new_node(i + 1, np.array([depth - i, depth + 1.0]))
        node = node.right
    return DecisionTree(root, schema)


class TestDeepTreeRouting:
    """Regression: routing recursed per node and hit Python's recursion
    limit (~1000) on deep chain trees; it is iterative now."""

    def test_depth_2000_chain(self):
        t = chain_tree(2_000)
        assert t.depth == 2_000
        X = np.array([[-0.5], [500.5], [10**9]])
        np.testing.assert_array_equal(t.predict(X), [0, 0, 1])
        leaf_ids = t.apply(X)
        assert len(set(leaf_ids)) == 3

    def test_deep_tree_proba(self):
        proba = chain_tree(2_000).predict_proba(np.array([[-0.5], [10**9]]))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestPredictProba:
    def test_matches_per_leaf_computation(self, rng):
        t = small_tree()
        X = rng.uniform(-2, 3, size=(200, 2))
        proba = t.predict_proba(X)
        # Reference: the former per-leaf masked loop.
        leaf_ids = t.apply(X)
        expected = np.zeros_like(proba)
        for node in t.iter_nodes():
            if not node.is_leaf:
                continue
            mask = leaf_ids == node.node_id
            expected[mask] = node.class_counts / node.class_counts.sum()
        np.testing.assert_array_equal(proba, expected)

    def test_rows_sum_to_one(self, rng):
        t = small_tree()
        X = rng.uniform(-2, 3, size=(64, 2))
        proba = t.predict_proba(X)
        assert proba.shape == (64, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_zero_count_leaf_uniform(self):
        schema = Schema((continuous("x0"),), ("a", "b"))
        account = TreeAccount()
        root = account.new_node(0, np.array([2.0, 2.0]))
        root.split = NumericSplit(0, 0.0)
        root.left = account.new_node(1, np.array([0.0, 0.0]))
        root.right = account.new_node(1, np.array([2.0, 2.0]))
        t = DecisionTree(root, schema)
        proba = t.predict_proba(np.array([[-1.0], [1.0]]))
        np.testing.assert_allclose(proba[0], [0.5, 0.5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestEmptyBatchShapes:
    def test_empty_predict_proba(self):
        t = small_tree()
        proba = t.predict_proba(np.empty((0, 2)))
        assert proba.shape == (0, 2)
        assert proba.dtype == np.float64

    def test_empty_one_dimensional_input(self):
        t = small_tree()
        assert t.predict(np.empty(0)).shape == (0,)
        assert t.apply(np.empty(0)).shape == (0,)


class TestUnseenCategoryRouting:
    """Regression: a category code outside the training vocabulary raised
    IndexError out of CategoricalSplit.goes_left; it now follows the child
    that absorbed more training records (ties go left)."""

    def make_tree(self, left_heavy: bool) -> DecisionTree:
        schema = Schema(
            (categorical("c", ("p", "q")), continuous("x0")), ("a", "b")
        )
        account = TreeAccount()
        root = account.new_node(0, np.array([50.0, 50.0]))
        left = account.new_node(
            1, np.array([60.0, 10.0]) if left_heavy else np.array([10.0, 10.0])
        )
        right = account.new_node(
            1, np.array([10.0, 20.0]) if left_heavy else np.array([40.0, 40.0])
        )
        root.split = CategoricalSplit(0, (True, False))
        root.left, root.right = left, right
        return DecisionTree(root, schema)

    def test_unseen_code_no_longer_raises(self):
        t = self.make_tree(left_heavy=True)
        X = np.array([[2.0, 0.0], [-1.0, 0.0]])  # codes 2 and -1 unseen
        np.testing.assert_array_equal(t.walk_apply(X), [1, 1])
        np.testing.assert_array_equal(t.apply(X), [1, 1])

    def test_unseen_code_follows_heavier_right_child(self):
        t = self.make_tree(left_heavy=False)
        X = np.array([[5.0, 0.0]])
        assert t.walk_apply(X)[0] == 2
        assert t.apply(X)[0] == 2

    def test_seen_codes_unaffected(self):
        t = self.make_tree(left_heavy=False)
        X = np.array([[0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_array_equal(t.walk_apply(X), [1, 2])
        np.testing.assert_array_equal(t.apply(X), [1, 2])
