"""Tests for repro.obs.trace: spans, parenting, export, round-trips."""

from __future__ import annotations

import io
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    load_trace_jsonl,
    render_tree,
    span_from_dict,
)


class TestSpanBasics:
    def test_records_name_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", items=3, label="x") as sp:
            pass
        assert sp.name == "work"
        assert sp.attrs == {"items": 3, "label": "x"}
        assert sp.end_s is not None
        assert sp.duration_s >= 0.0

    def test_duration_zero_while_open(self):
        tracer = Tracer()
        ctx = tracer.span("open")
        sp = ctx.__enter__()
        assert sp.duration_s == 0.0
        ctx.__exit__(None, None, None)
        assert sp.duration_s >= 0.0

    def test_annotate_after_exit(self):
        # Builders stamp final counters on the build span after it closed.
        tracer = Tracer()
        with tracer.span("build") as sp:
            pass
        sp.annotate(scans=7)
        assert tracer.spans()[0].attrs["scans"] == 7

    def test_ids_unique_and_start_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [sp.span_id for sp in tracer.spans()]
        assert ids == sorted(set(ids))
        names = [sp.name for sp in tracer.spans()]
        assert names == ["a", "b"]


class TestParenting:
    def test_with_nesting_links_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_parent_none_forces_root(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("detached", parent=None) as sp:
                pass
        assert sp.parent_id is None

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        recorded: list[Span] = []
        with tracer.span("scan") as scan_span:

            def worker():
                with tracer.span("chunk_batch", parent=scan_span) as sp:
                    recorded.append(sp)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert recorded[0].parent_id == scan_span.span_id

    def test_implicit_stack_is_per_thread(self):
        # A span open on the main thread must not become the implicit
        # parent of a span started on another thread.
        tracer = Tracer()
        out: list[Span] = []
        with tracer.span("main_open"):

            def worker():
                with tracer.span("worker_root") as sp:
                    out.append(sp)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert out[0].parent_id is None

    def test_concurrent_spans_thread_safe(self):
        tracer = Tracer()

        def worker(i: int):
            for _ in range(50):
                with tracer.span("w", worker=i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 200
        assert len({sp.span_id for sp in spans}) == 200


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", k="v") as outer:
            with tracer.span("inner", n=2):
                pass
        path = tmp_path / "trace.jsonl"
        n = tracer.write_jsonl(str(path))
        assert n == 2
        loaded = load_trace_jsonl(str(path))
        assert [sp.name for sp in loaded] == ["outer", "inner"]
        assert loaded[1].parent_id == outer.span_id
        assert loaded[0].attrs == {"k": "v"}
        assert loaded[1].duration_s >= 0.0

    def test_file_object_round_trip(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        buf = io.StringIO()
        assert tracer.write_jsonl(buf) == 1
        buf.seek(0)
        assert [sp.name for sp in load_trace_jsonl(buf)] == ["only"]

    def test_bad_line_names_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        tracer.write_jsonl(str(path))
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            load_trace_jsonl(str(path))

    def test_blank_lines_skipped(self):
        buf = io.StringIO('\n{"span_id": 0, "parent_id": null, "name": "a", '
                          '"start_s": 0.0, "dur_s": 0.1}\n\n')
        assert len(load_trace_jsonl(buf)) == 1


class TestRenderTree:
    def test_children_indent_under_parents(self):
        tracer = Tracer()
        with tracer.span("build", builder="CMP"):
            with tracer.span("level", level=1):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert lines[0].startswith("build")
        assert lines[1].startswith("  level")
        assert "builder=CMP" in lines[0]

    def test_orphan_parent_promoted_to_root(self):
        sp = Span("lonely", span_id=5, parent_id=99, start_s=0.0, thread="t", attrs={})
        sp.end_s = 0.5
        text = render_tree([sp])
        assert text.startswith("lonely")

    def test_empty(self):
        assert render_tree([]) == "(empty trace)"


class TestNullTracer:
    def test_span_is_reusable_noop(self):
        with NULL_TRACER.span("anything", key=1) as sp:
            sp.annotate(more=2)
        assert NULL_TRACER.spans() == []
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled
        assert Tracer().enabled

    def test_write_jsonl_refuses(self):
        with pytest.raises(RuntimeError):
            NullTracer().write_jsonl("/dev/null")

    def test_render_placeholder(self):
        assert "disabled" in NullTracer().render()


class TestContinuity:
    def test_context_round_trips_via_dict_and_pickle(self):
        import pickle

        tracer = Tracer()
        with tracer.span("scan") as sp:
            ctx = tracer.context(sp)
        assert ctx.parent_id == sp.span_id
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_worker_tracer_shares_time_axis(self):
        parent = Tracer()
        worker = Tracer.from_context(parent.context())
        with parent.span("a"):
            pass
        with worker.span("b"):
            pass
        # Same epoch: the worker span starts after the parent span did.
        assert worker.spans()[0].start_s >= parent.spans()[0].start_s

    def test_graft_remaps_ids_and_parents(self):
        parent = Tracer()
        with parent.span("scan") as scan:
            pass
        worker = Tracer.from_context(parent.context(scan))
        with worker.span("chunk_batch"):
            with worker.span("kernel"):
                pass
        shipped = [sp.to_dict() for sp in worker.spans()]
        grafted = parent.graft(shipped, parent=scan, worker=3)
        spans = {sp.name: sp for sp in parent.spans()}
        batch, kernel = spans["chunk_batch"], spans["kernel"]
        # Fresh ids from the parent's sequence, no collision with scan.
        assert len({sp.span_id for sp in parent.spans()}) == 3
        assert batch.parent_id == scan.span_id
        assert kernel.parent_id == batch.span_id
        # root_attrs land on the shipped root only.
        assert batch.attrs["worker"] == 3
        assert "worker" not in kernel.attrs
        assert [sp.name for sp in grafted] == ["chunk_batch", "kernel"]

    def test_graft_without_parent_makes_roots(self):
        tracer = Tracer()
        worker = Tracer()
        with worker.span("lonely"):
            pass
        (grafted,) = tracer.graft(worker.spans())
        assert grafted.parent_id is None

    def test_graft_keeps_timestamps_verbatim(self):
        tracer = Tracer()
        worker = Tracer.from_context(tracer.context())
        with worker.span("w"):
            pass
        orig = worker.spans()[0]
        (grafted,) = tracer.graft([orig.to_dict()])
        assert grafted.start_s == pytest.approx(orig.start_s)
        assert grafted.duration_s == pytest.approx(orig.duration_s)

    def test_span_from_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("x", key="v"):
            pass
        sp = tracer.spans()[0]
        back = span_from_dict(sp.to_dict())
        assert back.name == sp.name
        assert back.span_id == sp.span_id
        assert back.attrs == sp.attrs
        assert back.duration_s == pytest.approx(sp.duration_s)

    def test_null_tracer_context_and_graft_are_noops(self):
        nt = NullTracer()
        assert nt.context() is None
        assert nt.graft([{"span_id": 0}]) == []
