"""Edge-case coverage across modules that end-to-end tests reach rarely."""

import numpy as np
import pytest

from repro.baselines.sliq import SliqBuilder
from repro.baselines.windowing import WindowingBuilder
from repro.config import BuilderConfig
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.linear import GridLine, _decimated, gini_slope_walk
from repro.core.matrix import HistogramMatrix
from repro.core.serialize import tree_from_json, tree_to_json
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestPredictProba:
    def test_rows_sum_to_one(self, f2_small, fast_config):
        tree = CMPSBuilder(fast_config).build(f2_small).tree
        proba = tree.predict_proba(f2_small.X[:500])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0.0

    def test_argmax_matches_predict(self, f2_small, fast_config):
        tree = CMPSBuilder(fast_config).build(f2_small).tree
        proba = tree.predict_proba(f2_small.X[:500])
        np.testing.assert_array_equal(
            proba.argmax(axis=1), tree.predict(f2_small.X[:500])
        )

    def test_pure_leaf_is_certain(self, two_blob, fast_config):
        tree = CMPSBuilder(fast_config).build(two_blob).tree
        proba = tree.predict_proba(two_blob.X)
        assert proba.max(axis=1).mean() > 0.99


class TestLinearDecimation:
    def make_matrix(self, qx, qy, seed=0):
        rng = np.random.default_rng(seed)
        m = HistogramMatrix(
            0, 1,
            np.linspace(0, 1, qx + 1)[1:-1],
            np.linspace(0, 1, qy + 1)[1:-1],
            2,
        )
        m.counts[:] = rng.integers(0, 20, m.counts.shape).astype(np.float32)
        return m

    def test_small_matrix_untouched(self):
        m = self.make_matrix(8, 8)
        assert _decimated(m) is m

    def test_counts_conserved(self):
        m = self.make_matrix(50, 50)
        coarse = _decimated(m)
        assert coarse.qx <= 25 and coarse.qy <= 25
        np.testing.assert_allclose(coarse.counts.sum(), m.counts.sum())

    def test_non_multiple_sizes(self):
        m = self.make_matrix(37, 41)
        coarse = _decimated(m)
        np.testing.assert_allclose(coarse.counts.sum(), m.counts.sum())
        assert len(coarse.x_edges) == coarse.qx - 1
        assert len(coarse.y_edges) == coarse.qy - 1

    def test_walk_on_decimated_still_finds_structure(self):
        # Diagonal structure must survive decimation.
        qx = qy = 48
        m = HistogramMatrix(
            0, 1,
            np.linspace(0, 1, qx + 1)[1:-1],
            np.linspace(0, 1, qy + 1)[1:-1],
            2,
        )
        for i in range(qx):
            for j in range(qy):
                m.counts[i, j, 0 if i + j < qx - 1 else 1] = 5.0
        g, __ = gini_slope_walk(_decimated(m).counts)
        assert g < 0.1


class TestDegenerateDatasets:
    def test_all_one_class(self, fast_config, rng):
        ds = Dataset(
            rng.normal(size=(200, 2)),
            np.zeros(200, dtype=np.int64),
            Schema((continuous("a"), continuous("b")), ("x", "y")),
        )
        for builder_cls in (CMPSBuilder, CMPBuilder, SliqBuilder):
            tree = builder_cls(fast_config).build(ds).tree
            assert tree.n_nodes == 1
            assert accuracy(tree, ds) == 1.0

    def test_all_attributes_constant(self, fast_config):
        ds = Dataset(
            np.ones((100, 2)),
            (np.arange(100) % 2).astype(np.int64),
            Schema((continuous("a"), continuous("b")), ("x", "y")),
        )
        for builder_cls in (CMPSBuilder, CMPBuilder, SliqBuilder):
            tree = builder_cls(fast_config).build(ds).tree
            assert tree.n_nodes == 1  # nothing to split on

    def test_duplicate_records_conflicting_labels(self, fast_config):
        # 50/50 label noise on identical records: must terminate as a leaf.
        X = np.tile(np.array([[1.0, 2.0]]), (80, 1))
        X[:40, 0] = 5.0
        y = (np.arange(80) % 2).astype(np.int64)
        ds = Dataset(X, y, Schema((continuous("a"), continuous("b")), ("x", "y")))
        result = CMPSBuilder(fast_config).build(ds)
        assert_tree_consistent(result.tree, ds)
        assert result.tree.depth <= 1

    def test_categorical_only_schema(self, fast_config, rng):
        codes = rng.integers(0, 4, 300)
        ds = Dataset(
            codes[:, None].astype(float),
            (codes % 2).astype(np.int64),
            Schema((categorical("c", tuple("abcd")),), ("e", "o")),
        )
        # CMP-S handles categorical-only schemas (CMP-B needs >= 2 cont).
        result = CMPSBuilder(fast_config).build(ds)
        assert accuracy(result.tree, ds) == 1.0

    def test_two_records(self, fast_config):
        ds = Dataset(
            np.array([[0.0, 0.0], [1.0, 1.0]]),
            np.array([0, 1]),
            Schema((continuous("a"), continuous("b")), ("x", "y")),
        )
        cfg = fast_config.with_(min_records=2)
        result = CMPSBuilder(cfg).build(ds)
        assert_tree_consistent(result.tree, ds)


class TestWindowingWithOtherBases:
    def test_sliq_base(self, two_blob, fast_config):
        result = WindowingBuilder(fast_config, base_builder=SliqBuilder).build(two_blob)
        assert accuracy(result.tree, two_blob) > 0.97


class TestSerializeCategoricalTree:
    def test_round_trip_with_categorical_split(self, mixed_types, fast_config):
        tree = CMPSBuilder(fast_config).build(mixed_types).tree
        clone = tree_from_json(tree_to_json(tree))
        np.testing.assert_array_equal(
            clone.predict(mixed_types.X), tree.predict(mixed_types.X)
        )
