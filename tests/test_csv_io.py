"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro.data.csv_io import infer_schema, load_csv, save_csv
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous


@pytest.fixture()
def small_dataset() -> Dataset:
    schema = Schema(
        (continuous("age"), categorical("color", ("red", "green")), continuous("pay")),
        ("no", "yes"),
    )
    X = np.array(
        [
            [25.5, 0.0, 1000.0],
            [40.0, 1.0, 2500.75],
            [33.3, 0.0, 1200.0],
        ]
    )
    y = np.array([0, 1, 1])
    return Dataset(X, y, schema)


class TestRoundTrip:
    def test_exact_round_trip_with_schema(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(small_dataset, path)
        loaded = load_csv(path, schema=small_dataset.schema)
        np.testing.assert_array_equal(loaded.X, small_dataset.X)
        np.testing.assert_array_equal(loaded.y, small_dataset.y)

    def test_round_trip_with_inferred_schema(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(small_dataset, path)
        loaded = load_csv(path)
        # Inferred category/label orders may differ; decode and compare.
        for i in range(small_dataset.n_records):
            orig_color = small_dataset.schema.attributes[1].categories[
                int(small_dataset.X[i, 1])
            ]
            new_color = loaded.schema.attributes[1].categories[int(loaded.X[i, 1])]
            assert orig_color == new_color
            orig_label = small_dataset.schema.class_labels[small_dataset.y[i]]
            new_label = loaded.schema.class_labels[loaded.y[i]]
            assert orig_label == new_label
        np.testing.assert_allclose(loaded.X[:, 0], small_dataset.X[:, 0])

    def test_synthetic_round_trip(self, tmp_path):
        from repro.data.synthetic import generate_agrawal

        ds = generate_agrawal("F2", 200, seed=0)
        path = tmp_path / "agrawal.csv"
        save_csv(ds, path)
        loaded = load_csv(path, schema=ds.schema)
        np.testing.assert_array_equal(loaded.y, ds.y)
        np.testing.assert_allclose(loaded.X, ds.X)


class TestInference:
    def test_numeric_vs_categorical(self):
        header = ["a", "b", "class"]
        rows = [["1.5", "x", "p"], ["2", "y", "q"], ["3e1", "x", "p"]]
        schema = infer_schema(header, rows)
        assert schema.attributes[0].is_continuous
        assert not schema.attributes[1].is_continuous
        assert schema.attributes[1].categories == ("x", "y")
        assert schema.class_labels == ("p", "q")

    def test_too_few_columns(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            infer_schema(["class"], [["p"]])


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b,class\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,class\n1,p\n2\n")
        with pytest.raises(ValueError, match="ragged"):
            load_csv(path)

    def test_unknown_category(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("age,color,pay,class\n1.0,blue,2.0,yes\n")
        with pytest.raises(ValueError, match="unknown category"):
            load_csv(path, schema=small_dataset.schema)

    def test_unknown_label(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("age,color,pay,class\n1.0,red,2.0,maybe\n")
        with pytest.raises(ValueError, match="unknown class label"):
            load_csv(path, schema=small_dataset.schema)

    def test_schema_width_mismatch(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,class\n1.0,yes\n")
        with pytest.raises(ValueError, match="declares"):
            load_csv(path, schema=small_dataset.schema)

    def test_nan_rejected_with_line_number(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "age,color,pay,class\n1.0,red,2.0,yes\nnan,red,2.0,no\n"
        )
        with pytest.raises(ValueError, match=r"line 3: non-finite value 'nan'"):
            load_csv(path, schema=small_dataset.schema)

    def test_inf_rejected(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("age,color,pay,class\n1.0,red,inf,yes\n")
        with pytest.raises(ValueError, match="non-finite value 'inf'.*'pay'"):
            load_csv(path, schema=small_dataset.schema)

    def test_non_numeric_continuous_names_line(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("age,color,pay,class\noops,red,2.0,yes\n")
        with pytest.raises(ValueError, match="line 2: 'oops' is not a number"):
            load_csv(path, schema=small_dataset.schema)

    def test_ragged_row_names_line(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,class\n1,p\n2\n")
        with pytest.raises(ValueError, match="line 3.*expected 2 columns, got 1"):
            load_csv(path)

    def test_unknown_label_names_line(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "age,color,pay,class\n1.0,red,2.0,yes\n2.0,red,3.0,maybe\n"
        )
        with pytest.raises(ValueError, match="line 3: unknown class label"):
            load_csv(path, schema=small_dataset.schema)
