"""Tests for the SLIQ extension baseline."""

import numpy as np
import pytest

from repro.baselines.sliq import CLASS_LIST_ENTRY_BYTES, SliqBuilder
from repro.baselines.sprint import SprintBuilder
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestSliq:
    def test_counts_consistent(self, f2_small, fast_config):
        result = SliqBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_identical_tree_to_sprint(self, f2_small, fast_config):
        # Both are exact over the same candidates with the same tie-breaks.
        sliq = SliqBuilder(fast_config).build(f2_small).tree
        sprint = SprintBuilder(fast_config).build(f2_small).tree
        assert sliq.render() == sprint.render()

    def test_identical_tree_on_mixed_types(self, mixed_types, fast_config):
        sliq = SliqBuilder(fast_config).build(mixed_types).tree
        sprint = SprintBuilder(fast_config).build(mixed_types).tree
        assert sliq.render() == sprint.render()
        assert accuracy(sliq, mixed_types) == 1.0

    def test_less_list_io_than_sprint(self, f2_small, fast_config):
        # SLIQ reads its lists once per level; SPRINT also rewrites them.
        sliq = SliqBuilder(fast_config).build(f2_small)
        sprint = SprintBuilder(fast_config).build(f2_small)
        assert (
            sliq.stats.io.aux_records_read + sliq.stats.io.aux_records_written
            < sprint.stats.io.aux_records_read
            + sprint.stats.io.aux_records_written
        )

    def test_class_list_memory_charged(self, f2_small, fast_config):
        result = SliqBuilder(fast_config).build(f2_small)
        assert (
            result.stats.memory.peak
            >= CLASS_LIST_ENTRY_BYTES * f2_small.n_records
        )
        assert result.stats.memory.current == 0

    def test_single_dataset_scan(self, f2_small, fast_config):
        result = SliqBuilder(fast_config).build(f2_small)
        assert result.stats.io.scans == 1

    def test_stop_conditions(self, f2_small, fast_config):
        cfg = fast_config.with_(max_depth=3, min_records=400)
        tree = SliqBuilder(cfg).build(f2_small).tree
        assert tree.depth <= 3
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_records >= 400
