"""Tests for the CLOUDS baseline (SS and SSE modes)."""

import numpy as np
import pytest

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.sprint import SprintBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestCloudsSSE:
    def test_counts_consistent(self, f2_small, fast_config):
        result = CloudsBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_accuracy_close_to_exact(self, f2_small, fast_config):
        clouds_acc = accuracy(CloudsBuilder(fast_config).build(f2_small).tree, f2_small)
        exact_acc = accuracy(SprintBuilder(fast_config).build(f2_small).tree, f2_small)
        assert clouds_acc > exact_acc - 0.02

    def test_exact_split_on_clean_data(self, two_blob, fast_config):
        tree = CloudsBuilder(fast_config).build(two_blob).tree
        assert tree.root.split.attr == 0
        assert abs(tree.root.split.threshold) < 0.1
        # SSE resolves the exact point: the threshold is a data value.
        assert tree.root.split.threshold in two_blob.column(0)
        assert accuracy(tree, two_blob) == 1.0

    def test_needs_more_scans_than_cmp_s(self, f2_small, fast_config):
        # The second (exact) pass per level is what CMP-S eliminates.
        clouds = CloudsBuilder(fast_config).build(f2_small)
        cmp_s = CMPSBuilder(fast_config).build(f2_small)
        assert clouds.stats.io.scans > cmp_s.stats.io.scans

    def test_categorical(self, mixed_types, fast_config):
        result = CloudsBuilder(fast_config).build(mixed_types)
        assert accuracy(result.tree, mixed_types) == 1.0


class TestCloudsSS:
    def test_ss_uses_fewer_scans_than_sse(self, f2_small, fast_config):
        sse = CloudsBuilder(fast_config.with_(clouds_mode="sse")).build(f2_small)
        ss = CloudsBuilder(fast_config.with_(clouds_mode="ss")).build(f2_small)
        assert ss.stats.io.scans < sse.stats.io.scans

    def test_ss_splits_only_at_boundaries(self, two_blob, fast_config):
        result = CloudsBuilder(fast_config.with_(clouds_mode="ss")).build(two_blob)
        # Boundary-only splitting is approximate but still near the optimum.
        assert abs(result.tree.root.split.threshold) < 0.3
        assert accuracy(result.tree, two_blob) > 0.97

    def test_ss_consistent(self, f7_small, fast_config):
        result = CloudsBuilder(fast_config.with_(clouds_mode="ss")).build(f7_small)
        assert_tree_consistent(result.tree, f7_small)

    def test_invalid_mode_rejected(self, fast_config):
        with pytest.raises(ValueError, match="clouds_mode"):
            fast_config.with_(clouds_mode="bogus")
