"""Tests for the gini machinery, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.gini import (
    best_boundary,
    boundary_ginis,
    exact_best_threshold,
    exact_best_threshold_sorted,
    gini,
    gini_gain,
    gini_partition,
    gini_partition_many,
)

count_vectors = hnp.arrays(
    np.float64,
    st.integers(min_value=2, max_value=6),
    elements=st.integers(min_value=0, max_value=1000).map(float),
)


class TestGini:
    def test_pure_set_is_zero(self):
        assert gini(np.array([10.0, 0.0])) == 0.0

    def test_uniform_two_class(self):
        assert gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_set_is_zero(self):
        assert gini(np.zeros(3)) == 0.0

    def test_batched(self):
        out = gini(np.array([[10.0, 0.0], [5.0, 5.0]]))
        np.testing.assert_allclose(out, [0.0, 0.5])

    @given(count_vectors)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, counts):
        g = gini(counts)
        c = len(counts)
        assert 0.0 <= g <= 1.0 - 1.0 / c + 1e-12


class TestGiniPartition:
    def test_equation2(self):
        left = np.array([30.0, 10.0])
        right = np.array([5.0, 55.0])
        expected = (40 / 100) * gini(left) + (60 / 100) * gini(right)
        assert gini_partition(left, right) == pytest.approx(expected)

    def test_empty_side_collapses_to_parent(self):
        counts = np.array([30.0, 10.0])
        assert gini_partition(counts, np.zeros(2)) == pytest.approx(gini(counts))

    @given(count_vectors, st.data())
    @settings(max_examples=100, deadline=None)
    def test_partition_never_exceeds_parent(self, total, data):
        # gini is concave: any binary partition has weighted gini <= parent's.
        left = np.array(
            [data.draw(st.integers(0, int(t))) for t in total], dtype=np.float64
        )
        right = total - left
        assert gini_partition(left, right) <= gini(total) + 1e-9

    def test_partition_many_matches_binary(self):
        a = np.array([3.0, 7.0])
        b = np.array([8.0, 2.0])
        assert gini_partition_many([a, b]) == pytest.approx(gini_partition(a, b))

    def test_partition_many_empty(self):
        assert gini_partition_many(np.zeros((3, 2))) == 0.0


class TestBoundaryGinis:
    def test_matches_scalar(self, rng):
        hist = rng.integers(0, 50, size=(8, 3)).astype(float)
        cum = np.cumsum(hist, axis=0)[:-1]
        totals = hist.sum(axis=0)
        vec = boundary_ginis(cum, totals)
        for k in range(len(cum)):
            expected = gini_partition(cum[k], totals - cum[k])
            assert vec[k] == pytest.approx(expected)

    def test_best_boundary(self):
        # Perfectly separable: boundary 1 splits classes exactly.
        cum = np.array([[5.0, 0.0], [10.0, 0.0], [10.0, 5.0]])
        totals = np.array([10.0, 10.0])
        k, g = best_boundary(cum, totals)
        assert k == 1
        assert g == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            boundary_ginis(np.zeros((3,)), np.zeros(2))
        with pytest.raises(ValueError):
            best_boundary(np.zeros((0, 2)), np.zeros(2))


class TestExactBestThreshold:
    def test_perfect_split(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        labels = np.array([0, 0, 0, 1, 1, 1])
        thr, g = exact_best_threshold(values, labels, 2)
        assert thr == 3.0
        assert g == pytest.approx(0.0)

    def test_threshold_is_left_maximum(self, rng):
        # The split is value <= threshold and the threshold is a data value.
        values = rng.normal(size=200)
        labels = (values > 0.3).astype(np.int64)
        thr, g = exact_best_threshold(values, labels, 2)
        assert thr in values
        assert g == pytest.approx(0.0)
        assert thr == values[values <= 0.3].max()

    def test_sorted_variant_matches(self, rng):
        values = rng.normal(size=300)
        labels = rng.integers(0, 3, 300)
        order = np.argsort(values, kind="stable")
        a = exact_best_threshold(values, labels, 3)
        b = exact_best_threshold_sorted(values[order], labels[order], 3)
        assert a == b

    def test_constant_column_raises(self):
        with pytest.raises(ValueError, match="distinct"):
            exact_best_threshold(np.ones(10), np.arange(10) % 2, 2)

    def test_misaligned_raises(self):
        with pytest.raises(ValueError, match="align"):
            exact_best_threshold(np.ones(10), np.ones(9, dtype=int), 2)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 1)),
            min_size=4,
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, pairs):
        values = np.array([float(v) for v, _ in pairs])
        labels = np.array([c for _, c in pairs], dtype=np.int64)
        if len(np.unique(values)) < 2:
            return
        thr, g = exact_best_threshold(values, labels, 2)
        # Brute force over every distinct value as a threshold.
        best = np.inf
        for cand in np.unique(values)[:-1]:
            left = np.bincount(labels[values <= cand], minlength=2)
            right = np.bincount(labels[values > cand], minlength=2)
            best = min(best, gini_partition(left, right))
        assert g == pytest.approx(best)


class TestGiniGain:
    def test_gain(self):
        parent = np.array([10.0, 10.0])
        assert gini_gain(parent, 0.2) == pytest.approx(0.3)
