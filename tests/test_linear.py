"""Tests for linear-combination split discovery (Figures 11-12)."""

import numpy as np
import pytest

from repro.core.linear import (
    GridLine,
    best_linear_candidate,
    classify_cells,
    gini_slope_walk,
    line_gini,
)
from repro.core.matrix import MatrixSet
from repro.data.schema import Schema, continuous


def diag_matrixset(n=20_000, q=24, slope=1.0, seed=0, flip=False):
    """MatrixSet over (x, y) with class = (x + slope*y >= thresh)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, (n, 2))
    if flip:
        y = (X[:, 0] - slope * X[:, 1] >= 0.0).astype(np.int64)
    else:
        y = (X[:, 0] + slope * X[:, 1] >= 1.0).astype(np.int64)
    schema = Schema((continuous("x"), continuous("y")), ("u", "o"))
    edges = {
        0: np.linspace(0, 1, q + 1)[1:-1],
        1: np.linspace(0, 1, q + 1)[1:-1],
    }
    ms = MatrixSet.create(schema, 0, edges)
    from repro.data.dataset import Dataset

    ms.update(X, y)
    return ms, X, y


class TestClassifyCells:
    def test_partition_is_exhaustive_and_disjoint(self):
        under, above, on = classify_cells(6, 6, GridLine(4.0, 5.0))
        total = under.astype(int) + above.astype(int) + on.astype(int)
        assert np.all(total == 1)

    def test_geometry(self):
        # Line from (2, 0) to (0, 2): cell (0,0) is crossed (its far corner
        # (1,1) lies on the line), cell (3,3) is above.
        under, above, on = classify_cells(4, 4, GridLine(2.0, 2.0))
        assert under[0, 0]  # corner (1,1): 1/2 + 1/2 = 1 -> on the line -> under
        assert above[3, 3]
        assert on[1, 0] or on[0, 1]

    def test_everything_under_large_line(self):
        under, above, on = classify_cells(4, 4, GridLine(100.0, 100.0))
        assert under.all()


class TestLineGini:
    def test_pure_diagonal_matrix(self):
        # Counts: class 0 strictly below anti-diagonal, class 1 above.
        q = 8
        counts = np.zeros((q, q, 2))
        for i in range(q):
            for j in range(q):
                if i + j < q - 1:
                    counts[i, j, 0] = 10
                elif i + j > q - 1:
                    counts[i, j, 1] = 10
        g = line_gini(counts, GridLine(float(q), float(q)))
        assert g == pytest.approx(0.0, abs=1e-12)


class TestSlopeWalk:
    def test_finds_diagonal(self):
        ms, X, y = diag_matrixset()
        g, line = gini_slope_walk(ms.matrices[1].counts)
        # Perfect separation up to discretization noise.
        assert g < 0.05
        # The line should be near the anti-diagonal of the grid.
        assert 0.6 < line.x / line.y < 1.6

    def test_terminates_on_uniform_noise(self, rng):
        counts = rng.integers(0, 10, (16, 16, 2)).astype(float)
        g, line = gini_slope_walk(counts)
        assert np.isfinite(g)
        assert line.x <= 40 and line.y <= 40


class TestBestLinearCandidate:
    def test_negative_slope_candidate(self):
        ms, X, y = diag_matrixset()
        cand = best_linear_candidate(ms)
        assert cand is not None
        assert cand.gini < 0.05
        # Direction approximates x + y <= c with c near 1.
        assert cand.a == pytest.approx(1.0)
        assert 0.6 < cand.b < 1.6
        assert cand.c_lo < 1.0 < cand.c_hi

    def test_band_is_consistent_with_labels(self):
        ms, X, y = diag_matrixset()
        cand = best_linear_candidate(ms)
        w = cand.a * X[:, 0] + cand.b * X[:, 1]
        # Outside the band the classification is essentially clean.
        under = w <= cand.c_lo
        over = w > cand.c_hi
        assert y[under].mean() < 0.05
        assert y[over].mean() > 0.95

    def test_positive_slope_candidate(self):
        ms, X, y = diag_matrixset(flip=True)
        cand = best_linear_candidate(ms)
        assert cand is not None
        assert cand.gini < 0.08
        # Separating x - y >= 0 requires a negative y coefficient
        # (relative to the x coefficient's sign).
        assert cand.a * cand.b < 0

    def test_uncorrelated_data_gives_weak_candidate(self, rng):
        X = rng.uniform(0, 1, (5000, 2))
        y = rng.integers(0, 2, 5000)
        schema = Schema((continuous("x"), continuous("y")), ("a", "b"))
        edges = {0: np.linspace(0, 1, 17)[1:-1], 1: np.linspace(0, 1, 17)[1:-1]}
        ms = MatrixSet.create(schema, 0, edges)
        ms.update(X, y)
        cand = best_linear_candidate(ms)
        if cand is not None:
            assert cand.gini > 0.4  # noise: no line helps

    def test_no_matrices(self):
        schema = Schema((continuous("x"), continuous("y")), ("a", "b"))
        ms = MatrixSet.create(schema, 0, {0: np.array([0.5]), 1: np.array([0.5])})
        # Matrix exists but is empty; should not crash.
        cand = best_linear_candidate(ms)
        assert cand is None or np.isfinite(cand.gini)


class TestDegenerateLines:
    """Regression: a GridLine with a zero/negative intercept describes no
    actual line through the grid; classify_cells used to silently return
    an all-or-nothing partition that corrupted the gini walk.  Both entry
    points now reject it up front."""

    @pytest.mark.parametrize("line", [
        GridLine(0.0, 2.0),
        GridLine(2.0, 0.0),
        GridLine(-1.0, 3.0),
        GridLine(0.0, 0.0),
    ])
    def test_classify_cells_rejects(self, line):
        with pytest.raises(ValueError, match="degenerate grid line"):
            classify_cells(4, 4, line)

    def test_line_gini_rejects(self):
        counts = np.ones((4, 4, 2))
        with pytest.raises(ValueError, match="both intercepts must be positive"):
            line_gini(counts, GridLine(3.0, 0.0))


class TestDegenerateGrids:
    """The slope walk must stay well-formed on 1-column / 1-row count
    grids instead of ever proposing a line with a zero intercept."""

    def test_single_column_grid(self):
        counts = np.zeros((1, 5, 2))
        counts[0, :2, 0] = 10.0
        counts[0, 2:, 1] = 10.0
        gini, line = gini_slope_walk(counts)
        assert line.x > 0.0 and line.y > 0.0
        assert 0.0 <= gini <= 1.0

    def test_single_row_grid(self):
        counts = np.zeros((5, 1, 2))
        counts[:3, 0, 0] = 7.0
        counts[3:, 0, 1] = 7.0
        gini, line = gini_slope_walk(counts)
        assert line.x > 0.0 and line.y > 0.0
        assert 0.0 <= gini <= 1.0

    def test_single_cell_grid(self):
        counts = np.full((1, 1, 2), 5.0)
        gini, line = gini_slope_walk(counts)
        assert line.x > 0.0 and line.y > 0.0
        assert 0.0 <= gini <= 1.0
