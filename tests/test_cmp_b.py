"""End-to-end tests for CMP-B (matrices, prediction, two-level growth)."""

import numpy as np
import pytest

from repro.baselines.sprint import SprintBuilder
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.data.dataset import Dataset
from repro.data.schema import Schema, continuous
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent


class TestCMPBEndToEnd:
    def test_counts_consistent_with_routing(self, f2_small, fast_config):
        result = CMPBBuilder(fast_config).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_consistent_on_f7(self, f7_small, fast_config):
        result = CMPBBuilder(fast_config).build(f7_small)
        assert_tree_consistent(result.tree, f7_small)

    def test_accuracy_close_to_exact(self, f2_small, fast_config):
        b_acc = accuracy(CMPBBuilder(fast_config).build(f2_small).tree, f2_small)
        exact_acc = accuracy(SprintBuilder(fast_config).build(f2_small).tree, f2_small)
        assert b_acc > exact_acc - 0.03

    def test_never_more_scans_than_cmp_s(self, f2_small, fast_config):
        s_scans = CMPSBuilder(fast_config).build(f2_small).stats.io.scans
        b_scans = CMPBBuilder(fast_config).build(f2_small).stats.io.scans
        assert b_scans <= s_scans

    def test_predictions_are_recorded(self, f2_small, fast_config):
        stats = CMPBBuilder(fast_config).build(f2_small).stats
        assert stats.predictions_made > 0
        assert 0 <= stats.predictions_correct <= stats.predictions_made

    def test_two_level_growth_happens(self, fast_config):
        # A dataset where the same attribute keeps splitting: prediction
        # locks on and second splits fire, so some scan grows two levels.
        rng = np.random.default_rng(3)
        n = 6_000
        x0 = rng.uniform(0, 16, n)
        x1 = rng.uniform(0, 1, n)
        y = (np.floor(x0 / 2) % 2).astype(np.int64)  # 8 stripes along x0
        ds = Dataset(
            np.column_stack([x0, x1]),
            y,
            Schema((continuous("a"), continuous("b")), ("s0", "s1")),
        )
        result = CMPBBuilder(fast_config.with_(max_depth=10)).build(ds)
        assert result.tree.depth > 2
        assert result.stats.two_level_splits >= 1
        assert accuracy(result.tree, ds) > 0.95

    def test_deterministic(self, f2_small, fast_config):
        a = CMPBBuilder(fast_config).build(f2_small)
        b = CMPBBuilder(fast_config).build(f2_small)
        assert a.tree.render() == b.tree.render()

    def test_requires_two_continuous_attributes(self, fast_config, rng):
        ds = Dataset(
            rng.normal(size=(100, 1)),
            rng.integers(0, 2, 100),
            Schema((continuous("only"),), ("a", "b")),
        )
        with pytest.raises(ValueError, match="two continuous"):
            CMPBBuilder(fast_config).build(ds)

    def test_categorical_splits_supported(self, mixed_types, fast_config):
        result = CMPBBuilder(fast_config).build(mixed_types)
        assert_tree_consistent(result.tree, mixed_types)
        assert accuracy(result.tree, mixed_types) == 1.0

    def test_memory_released(self, f2_small, fast_config):
        result = CMPBBuilder(fast_config).build(f2_small)
        assert result.stats.memory.current == 0
        assert result.stats.memory.peak > 0

    def test_matrix_cells_capped(self, f2_small, fast_config):
        cfg = fast_config.with_(matrix_max_cells=64)
        result = CMPBBuilder(cfg).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_x_tie_margin_zero_still_works(self, f2_small, fast_config):
        cfg = fast_config.with_(x_tie_margin=0.0)
        result = CMPBBuilder(cfg).build(f2_small)
        assert_tree_consistent(result.tree, f2_small)

    def test_public_pruning(self, f2_small, fast_config):
        plain = CMPBBuilder(fast_config).build(f2_small)
        pruned = CMPBBuilder(fast_config.with_(prune="public")).build(f2_small)
        assert pruned.tree.n_nodes <= plain.tree.n_nodes
