"""Tests for the Agrawal synthetic generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    AGRAWAL_SCHEMA,
    ATTRIBUTE_NAMES,
    FUNCTIONS,
    GROUP_A,
    GROUP_B,
    generate_agrawal,
    generate_function_f,
)


class TestSchema:
    def test_attribute_layout(self):
        assert AGRAWAL_SCHEMA.n_attributes == 9
        assert [a.name for a in AGRAWAL_SCHEMA.attributes] == list(ATTRIBUTE_NAMES)
        assert AGRAWAL_SCHEMA.continuous_indices() == [0, 1, 2, 6, 7, 8]
        assert AGRAWAL_SCHEMA.categorical_indices() == [3, 4, 5]

    def test_two_classes(self):
        assert AGRAWAL_SCHEMA.class_labels == ("Group A", "Group B")


class TestAttributeDistributions:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate_agrawal("F1", 20_000, seed=0, perturbation=0.0)

    def test_salary_range(self, ds):
        salary = ds.column("salary")
        assert salary.min() >= 20_000
        assert salary.max() <= 150_000

    def test_commission_zero_iff_high_salary(self, ds):
        salary = ds.column("salary")
        commission = ds.column("commission")
        assert np.all(commission[salary >= 75_000] == 0)
        low = commission[salary < 75_000]
        assert np.all((low >= 10_000) & (low <= 75_000))

    def test_age_range(self, ds):
        age = ds.column("age")
        assert age.min() >= 20
        assert age.max() <= 80

    def test_categorical_codes(self, ds):
        assert set(np.unique(ds.column("elevel"))) <= set(range(5))
        assert set(np.unique(ds.column("car"))) <= set(range(20))
        assert set(np.unique(ds.column("zipcode"))) <= set(range(9))

    def test_hvalue_depends_on_zipcode(self, ds):
        zipcode = ds.column("zipcode")
        hvalue = ds.column("hvalue")
        for z in range(9):
            k = z + 1
            vals = hvalue[zipcode == z]
            assert vals.min() >= 0.5 * k * 100_000 - 1e-6
            assert vals.max() <= 1.5 * k * 100_000 + 1e-6

    def test_loan_range(self, ds):
        loan = ds.column("loan")
        assert loan.min() >= 0
        assert loan.max() <= 500_000


class TestLabelSemantics:
    def test_f1_age_rule(self):
        ds = generate_agrawal("F1", 5_000, seed=1, perturbation=0.0)
        age = ds.column("age")
        expected = np.where((age < 40) | (age >= 60), GROUP_A, GROUP_B)
        np.testing.assert_array_equal(ds.y, expected)

    def test_f2_box_rule(self):
        ds = generate_agrawal("F2", 5_000, seed=2, perturbation=0.0)
        age = ds.column("age")
        salary = ds.column("salary")
        in_a = (
            ((age < 40) & (salary >= 50_000) & (salary <= 100_000))
            | ((age >= 40) & (age < 60) & (salary >= 75_000) & (salary <= 125_000))
            | ((age >= 60) & (salary >= 25_000) & (salary <= 75_000))
        )
        np.testing.assert_array_equal(ds.y, np.where(in_a, GROUP_A, GROUP_B))

    def test_f7_disposable_rule(self):
        ds = generate_agrawal("F7", 5_000, seed=3, perturbation=0.0)
        disp = (
            2 * (ds.column("salary") + ds.column("commission")) / 3
            - ds.column("loan") / 5
            - 20_000
        )
        np.testing.assert_array_equal(ds.y, np.where(disp > 0, GROUP_A, GROUP_B))

    def test_function_f_rule(self):
        ds = generate_function_f(5_000, seed=4)
        in_a = (ds.column("age") >= 40) & (
            ds.column("salary") + ds.column("commission") >= 100_000
        )
        np.testing.assert_array_equal(ds.y, np.where(in_a, GROUP_A, GROUP_B))

    @pytest.mark.parametrize("function", sorted(FUNCTIONS))
    def test_both_classes_present(self, function):
        ds = generate_agrawal(function, 5_000, seed=5)
        counts = ds.class_counts()
        assert counts.min() > 0, f"{function} produced a single class"


class TestDeterminismAndNoise:
    def test_same_seed_same_data(self):
        a = generate_agrawal("F2", 1_000, seed=9)
        b = generate_agrawal("F2", 1_000, seed=9)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seed_differs(self):
        a = generate_agrawal("F2", 1_000, seed=9)
        b = generate_agrawal("F2", 1_000, seed=10)
        assert not np.array_equal(a.X, b.X)

    def test_perturbation_moves_attributes_not_labels(self):
        clean = generate_agrawal("F2", 2_000, seed=11, perturbation=0.0)
        noisy = generate_agrawal("F2", 2_000, seed=11, perturbation=0.05)
        np.testing.assert_array_equal(clean.y, noisy.y)
        assert not np.array_equal(clean.X, noisy.X)

    def test_unknown_function(self):
        with pytest.raises(ValueError, match="unknown function"):
            generate_agrawal("F99", 100)

    def test_bad_record_count(self):
        with pytest.raises(ValueError, match="positive"):
            generate_agrawal("F1", 0)
