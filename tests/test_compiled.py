"""Tests for the compiled batch inference engine (core/compiled.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import (
    CATEGORICAL,
    LEAF,
    LINEAR,
    NUMERIC,
    compile_tree,
    tree_fingerprint,
)
from repro.core.native import native_available
from repro.core.serialize import tree_from_json, tree_to_json
from repro.core.splits import CategoricalSplit, NumericSplit
from repro.core.tree import DecisionTree, Node, TreeAccount
from repro.data.schema import Schema, categorical, continuous
from repro.eval.treegen import random_batch, random_tree
from repro.pruning.mdl import mdl_prune


def cat_tree() -> DecisionTree:
    """Root categorical split; left child heavier than right."""
    schema = Schema(
        (categorical("color", ("red", "green", "blue")), continuous("x")),
        ("a", "b"),
    )
    account = TreeAccount()
    root = account.new_node(0, np.array([70.0, 30.0]))
    left = account.new_node(1, np.array([60.0, 10.0]))
    right = account.new_node(1, np.array([10.0, 20.0]))
    root.split = CategoricalSplit(0, (True, False, True))
    root.left, root.right = left, right
    return DecisionTree(root, schema)


class TestCompileLayout:
    def test_preorder_arrays(self):
        t = random_tree(depth=3, seed=1)
        c = compile_tree(t)
        nodes = list(t.iter_nodes())
        assert c.n_nodes == len(nodes)
        np.testing.assert_array_equal(c.node_id, [n.node_id for n in nodes])
        assert c.n_leaves == t.n_leaves
        assert c.proba.shape == (t.n_leaves, t.schema.n_classes)
        assert c.nbytes() > 0
        assert set(np.unique(c.kind)) <= {LEAF, NUMERIC, CATEGORICAL, LINEAR}

    def test_leaves_self_loop(self):
        c = compile_tree(random_tree(depth=4, seed=2))
        leaves = np.nonzero(c.kind == LEAF)[0]
        np.testing.assert_array_equal(c.left[leaves], leaves)
        np.testing.assert_array_equal(c.right[leaves], leaves)

    def test_depth_and_kind_flags(self):
        c = compile_tree(random_tree(depth=5, seed=3))
        assert c.depth == 5
        assert c.has_linear == bool((c.kind == LINEAR).any())
        assert c.has_categorical == bool((c.kind == CATEGORICAL).any())

    def test_single_leaf_tree(self):
        schema = Schema((continuous("x"),), ("a", "b"))
        t = DecisionTree(Node(0, 0, np.array([3.0, 1.0])), schema)
        c = compile_tree(t)
        X = np.array([[0.5], [100.0]])
        np.testing.assert_array_equal(c.predict(X), [0, 0])
        np.testing.assert_array_equal(c.apply(X), [0, 0])


class TestBitIdentity:
    """The compiled engine must match the object walker bit for bit."""

    @given(
        seed=st.integers(0, 10_000),
        batch_seed=st.integers(0, 10_000),
        leaf_prob=st.floats(0.0, 0.5),
        unseen=st.floats(0.0, 0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_trees_all_split_kinds(self, seed, batch_seed, leaf_prob, unseen):
        t = random_tree(depth=6, seed=seed, leaf_prob=leaf_prob)
        X = random_batch(t.schema, 300, seed=batch_seed, unseen_frac=unseen)
        np.testing.assert_array_equal(t.predict(X), t.walk_predict(X))
        np.testing.assert_array_equal(t.apply(X), t.walk_apply(X))
        proba = t.predict_proba(X)
        walked = t.walk_predict_proba(X)
        assert proba.dtype == walked.dtype
        np.testing.assert_array_equal(proba, walked)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_numpy_route_matches_walker(self, seed):
        # The numpy fallback path must hold the same guarantee as the
        # (possibly native) default dispatch.
        t = random_tree(depth=6, seed=seed, leaf_prob=0.2)
        X = random_batch(t.schema, 300, seed=seed + 1, unseen_frac=0.1)
        c = t.compiled()
        routed = c._route_numpy(np.ascontiguousarray(X))
        np.testing.assert_array_equal(c.node_id[routed], t.walk_apply(X))

    def test_native_and_numpy_routes_agree(self):
        if not native_available():
            pytest.skip("no C compiler on this machine")
        t = random_tree(depth=8, seed=5)
        X = random_batch(t.schema, 5000, seed=6, unseen_frac=0.05)
        c = t.compiled()
        np.testing.assert_array_equal(
            c.route(X), c._route_numpy(np.ascontiguousarray(X))
        )

    def test_noncontiguous_input(self):
        t = random_tree(depth=5, seed=7)
        wide = random_batch(t.schema, 200, seed=8)
        X = np.hstack([wide, wide])[:, : t.schema.n_attributes][::2]
        assert not X.flags.c_contiguous
        np.testing.assert_array_equal(t.predict(X), t.walk_predict(X))


class TestEmptyBatch:
    def test_predict_shapes(self):
        t = random_tree(depth=4, seed=0)
        p = t.schema.n_attributes
        for empty in (np.empty((0, p)), np.empty(0)):
            assert t.predict(empty).shape == (0,)
            assert t.apply(empty).shape == (0,)
            proba = t.predict_proba(empty)
            assert proba.shape == (0, t.schema.n_classes)


class TestUnseenCategories:
    def test_unseen_code_routes_to_heavier_child(self):
        t = cat_tree()
        # code 7 was never seen; left child holds 70 records vs 30.
        X = np.array([[7.0, 0.0]])
        heavy_leaf = t.root.left.node_id
        assert t.apply(X)[0] == heavy_leaf
        assert t.walk_apply(X)[0] == heavy_leaf

    def test_tie_goes_left(self):
        t = cat_tree()
        t.root.left.class_counts = np.array([15.0, 15.0])
        t.root.right.class_counts = np.array([10.0, 20.0])
        t.invalidate_compiled()
        X = np.array([[-3.0, 0.0]])
        assert t.apply(X)[0] == t.root.left.node_id

    def test_walker_and_compiled_agree_on_unseen(self):
        t = random_tree(depth=6, seed=11, p_categorical=0.8, p_numeric=0.2, p_linear=0.0)
        X = random_batch(t.schema, 500, seed=12, unseen_frac=0.5)
        np.testing.assert_array_equal(t.predict(X), t.walk_predict(X))


class TestFingerprint:
    def test_stable_across_recompiles(self):
        t = random_tree(depth=4, seed=20)
        assert tree_fingerprint(t) == compile_tree(t).fingerprint

    def test_round_trip_preserves_fingerprint(self):
        t = random_tree(depth=5, seed=21)
        clone = tree_from_json(tree_to_json(t))
        assert tree_fingerprint(clone) == tree_fingerprint(t)

    def test_different_trees_differ(self):
        a = random_tree(depth=4, seed=22)
        b = random_tree(depth=4, seed=23)
        assert tree_fingerprint(a) != tree_fingerprint(b)

    def test_deep_chain_fingerprints_without_recursion(self):
        schema = Schema((continuous("x"),), ("a", "b"))
        account = TreeAccount()
        root = account.new_node(0, np.array([2.0, 1.0]))
        node = root
        for d in range(1, 1500):
            node.split = NumericSplit(0, float(d))
            node.left = account.new_node(d, np.array([1.0, 0.0]))
            node.right = account.new_node(d, np.array([1.0, 1.0]))
            node = node.right
        t = DecisionTree(root, schema)
        assert len(tree_fingerprint(t)) == 64  # full sha256 hex digest


class TestCompiledCache:
    def test_lazy_and_reused(self):
        t = random_tree(depth=4, seed=30)
        assert t.compiled() is t.compiled()

    def test_pruning_invalidates(self):
        t = random_tree(depth=6, seed=31, root_records=40)
        before = t.compiled()
        removed = mdl_prune(t)
        assert removed > 0  # tiny leaf counts make pruning certain
        after = t.compiled()
        assert after is not before
        assert after.n_nodes == t.n_nodes
        assert after.fingerprint != before.fingerprint

    def test_invalidate_compiled_resets(self):
        t = random_tree(depth=3, seed=32)
        first = t.compiled()
        t.invalidate_compiled()
        assert t.compiled() is not first
