"""Tests for file-backed training tables."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal
from repro.io.errors import ChecksumError
from repro.io.metrics import IOStats
from repro.io.storage import (
    MAGIC,
    MAGIC_V2,
    FilePagedTable,
    StoredDataset,
    write_table,
)


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    ds = generate_agrawal("F2", 3_000, seed=2)
    path = tmp_path_factory.mktemp("tables") / "f2.cmptbl"
    write_table(ds, path)
    return ds, path


class TestFileFormat:
    def test_round_trip(self, stored):
        ds, path = stored
        loaded = StoredDataset(path).load()
        np.testing.assert_array_equal(loaded.X, ds.X)
        np.testing.assert_array_equal(loaded.y, ds.y)
        assert loaded.schema.class_labels == ds.schema.class_labels
        assert [a.name for a in loaded.schema.attributes] == [
            a.name for a in ds.schema.attributes
        ]

    def test_metadata_without_loading(self, stored):
        ds, path = stored
        sd = StoredDataset(path)
        assert sd.n_records == ds.n_records
        assert sd.n_attributes == ds.n_attributes
        assert sd.n_classes == ds.n_classes

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTATBL0" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            FilePagedTable(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(MAGIC)
        with pytest.raises(ValueError, match="truncated"):
            FilePagedTable(path)


class TestScans:
    def test_scan_accounting(self, stored):
        ds, path = stored
        stats = IOStats()
        table = FilePagedTable(path, stats=stats, page_records=100)
        got = np.concatenate([c.y for c in table.scan()])
        np.testing.assert_array_equal(got, ds.y)
        assert stats.scans == 1
        assert stats.pages_read == 30
        assert stats.records_read == 3_000

    def test_chunks_are_real_arrays(self, stored):
        __, path = stored
        chunk = next(iter(FilePagedTable(path).scan()))
        assert isinstance(chunk.X, np.ndarray)
        assert not isinstance(chunk.X, np.memmap)
        chunk.X[0, 0] = -1.0  # must not raise (writable copy)


class TestV2Integrity:
    @pytest.fixture()
    def v2(self, tmp_path):
        ds = generate_agrawal("F2", 1_000, seed=4)
        path = tmp_path / "f2.cmptbl"
        write_table(ds, path)
        return ds, path

    def test_v2_is_the_default_format(self, v2):
        __, path = v2
        assert path.read_bytes()[:8] == MAGIC_V2
        assert StoredDataset(path).version == 2

    def test_flipped_data_byte_rejected(self, v2):
        __, path = v2
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01  # mid-file: inside the X data pages
        path.write_bytes(bytes(raw))
        table = FilePagedTable(path)
        with pytest.raises(ChecksumError, match="checksum mismatch in page"):
            list(table.scan())

    def test_flipped_header_byte_rejected_at_open(self, v2):
        __, path = v2
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0x01  # inside the counts the footer CRC covers
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            FilePagedTable(path)

    def test_truncated_tail_rejected_at_open(self, v2):
        __, path = v2
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])
        with pytest.raises(ValueError):
            FilePagedTable(path)

    def test_clean_file_verifies_once_and_scans(self, v2):
        ds, path = v2
        table = FilePagedTable(path)
        for __ in range(2):  # second scan hits already-verified pages
            got = np.concatenate([c.y for c in table.scan()])
            np.testing.assert_array_equal(got, ds.y)

    def test_legacy_v1_still_readable(self, tmp_path):
        ds = generate_agrawal("F2", 500, seed=4)
        path = tmp_path / "legacy.cmptbl"
        write_table(ds, path, version=1)
        assert path.read_bytes()[:8] == MAGIC
        sd = StoredDataset(path)
        assert sd.version == 1
        loaded = sd.load()
        np.testing.assert_array_equal(loaded.X, ds.X)
        np.testing.assert_array_equal(loaded.y, ds.y)

    def test_write_is_atomic_no_temp_left_behind(self, v2, tmp_path):
        __, path = v2
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.cmptbl"
        path.write_bytes(b"CMPTBL99" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            FilePagedTable(path)


class TestLifecycle:
    def test_close_releases_and_blocks_reads(self, stored):
        __, path = stored
        table = FilePagedTable(path)
        list(table.scan())
        assert not table.closed
        table.close()
        assert table.closed
        with pytest.raises(ValueError, match="closed"):
            table.read_chunk(0)
        table.close()  # idempotent

    def test_context_manager_closes(self, stored):
        ds, path = stored
        with FilePagedTable(path) as table:
            got = np.concatenate([c.y for c in table.scan()])
        np.testing.assert_array_equal(got, ds.y)
        assert table.closed

    def test_stored_dataset_probe_does_not_leak(self, stored):
        __, path = stored
        sd = StoredDataset(path)
        probe = getattr(sd, "_probe", None)
        assert probe is None or probe.closed


class TestBuildFromFile:
    def test_cmp_s_trains_from_disk(self, stored):
        ds, path = stored
        cfg = BuilderConfig(n_intervals=16, max_depth=5, min_records=20)
        from_file = CMPSBuilder(cfg).build(StoredDataset(path))
        from_memory = CMPSBuilder(cfg).build(ds)
        assert from_file.tree.render() == from_memory.tree.render()
        assert from_file.stats.io.scans == from_memory.stats.io.scans
