"""Tests for file-backed training tables."""

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal
from repro.io.metrics import IOStats
from repro.io.storage import MAGIC, FilePagedTable, StoredDataset, write_table


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    ds = generate_agrawal("F2", 3_000, seed=2)
    path = tmp_path_factory.mktemp("tables") / "f2.cmptbl"
    write_table(ds, path)
    return ds, path


class TestFileFormat:
    def test_round_trip(self, stored):
        ds, path = stored
        loaded = StoredDataset(path).load()
        np.testing.assert_array_equal(loaded.X, ds.X)
        np.testing.assert_array_equal(loaded.y, ds.y)
        assert loaded.schema.class_labels == ds.schema.class_labels
        assert [a.name for a in loaded.schema.attributes] == [
            a.name for a in ds.schema.attributes
        ]

    def test_metadata_without_loading(self, stored):
        ds, path = stored
        sd = StoredDataset(path)
        assert sd.n_records == ds.n_records
        assert sd.n_attributes == ds.n_attributes
        assert sd.n_classes == ds.n_classes

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTATBL0" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            FilePagedTable(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(MAGIC)
        with pytest.raises(ValueError, match="truncated"):
            FilePagedTable(path)


class TestScans:
    def test_scan_accounting(self, stored):
        ds, path = stored
        stats = IOStats()
        table = FilePagedTable(path, stats=stats, page_records=100)
        got = np.concatenate([c.y for c in table.scan()])
        np.testing.assert_array_equal(got, ds.y)
        assert stats.scans == 1
        assert stats.pages_read == 30
        assert stats.records_read == 3_000

    def test_chunks_are_real_arrays(self, stored):
        __, path = stored
        chunk = next(iter(FilePagedTable(path).scan()))
        assert isinstance(chunk.X, np.ndarray)
        assert not isinstance(chunk.X, np.memmap)
        chunk.X[0, 0] = -1.0  # must not raise (writable copy)


class TestBuildFromFile:
    def test_cmp_s_trains_from_disk(self, stored):
        ds, path = stored
        cfg = BuilderConfig(n_intervals=16, max_depth=5, min_records=20)
        from_file = CMPSBuilder(cfg).build(StoredDataset(path))
        from_memory = CMPSBuilder(cfg).build(ds)
        assert from_file.tree.render() == from_memory.tree.render()
        assert from_file.stats.io.scans == from_memory.stats.io.scans
