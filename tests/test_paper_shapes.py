"""Integration tests asserting the *shape* of the paper's headline claims.

These run at reduced scale; the benchmarks regenerate the full tables.
Each test cites the claim it checks.
"""

import numpy as np
import pytest

from repro.baselines.clouds import CloudsBuilder
from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sprint import SprintBuilder
from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal, generate_function_f
from repro.eval.harness import run_builder
from repro.eval.metrics import accuracy


@pytest.fixture(scope="module")
def cfg() -> BuilderConfig:
    return BuilderConfig(
        n_intervals=50, max_depth=8, min_records=40, prune="public",
        reservoir_capacity=6000,
    )


@pytest.fixture(scope="module")
def f2(cfg):
    return generate_agrawal("F2", 20_000, seed=5)


@pytest.fixture(scope="module")
def results(cfg, f2):
    out = {}
    for builder_cls in (
        CMPSBuilder, CMPBBuilder, CMPBuilder,
        CloudsBuilder, RainForestBuilder, SprintBuilder,
    ):
        record, result = run_builder(builder_cls(cfg), f2)
        out[builder_cls.name] = (record, result)
    return out


class TestScanClaims:
    def test_cmp_s_halves_clouds_scans(self, results):
        # §2: CMP-S "reduce[s] disk access up to 50%" vs CLOUDS by
        # eliminating the per-level exact pass.
        cmp_scans = results["CMP-S"][0].scans
        clouds_scans = results["CLOUDS"][0].scans
        assert cmp_scans < clouds_scans
        assert cmp_scans <= 0.75 * clouds_scans

    def test_cmp_b_never_worse_than_cmp_s(self, results):
        # §3: "CMP-B is almost 40% faster than CMP-S thanks to the
        # prediction" — at our scale the gap is smaller, but the direction
        # must hold.
        assert results["CMP-B"][0].scans <= results["CMP-S"][0].scans

    def test_sprint_simulated_time_is_worst(self, results):
        # Figures 16-17: "In comparison with SPRINT, CMP is nearly five
        # times faster" — SPRINT's attribute-list traffic dominates.
        sprint = results["SPRINT"][0].simulated_ms
        for name in ("CMP-S", "CMP-B", "CMP", "RainForest"):
            assert sprint > results[name][0].simulated_ms

    def test_sprint_vs_cmp_factor(self, results):
        # The factor should be well above 2x at this scale.
        assert (
            results["SPRINT"][0].simulated_ms
            > 2.0 * results["CMP"][0].simulated_ms
        )

    def test_rainforest_competitive_with_cmp(self, results):
        # Figures 16-17: "RainForest algorithm slightly outperforms CMP".
        rf = results["RainForest"][0].simulated_ms
        cmp_ms = results["CMP"][0].simulated_ms
        assert rf < cmp_ms * 1.25


class TestMemoryClaims:
    def test_rainforest_memory_dwarfs_cmp(self, results):
        # Figure 19: the RF-Hybrid AVC buffer (20 MB in the paper's setup)
        # vs CMP's buffers + matrices.
        rf_mem = results["RainForest"][0].peak_memory_bytes
        cmp_mem = results["CMP"][0].peak_memory_bytes
        assert rf_mem > 3 * cmp_mem

    def test_cmp_memory_above_clouds_but_modest(self, results):
        # Matrices cost more than 1-D histograms but stay far below RF.
        assert (
            results["CMP"][0].peak_memory_bytes
            < results["RainForest"][0].peak_memory_bytes
        )


class TestAccuracyClaims:
    def test_all_algorithms_agree_on_accuracy(self, results, f2):
        # §4: "for large datasets, [CMP] is as accurate as SPRINT".
        exact = results["SPRINT"][0].train_accuracy
        for name in ("CMP-S", "CMP-B", "CMP", "CLOUDS", "RainForest"):
            assert results[name][0].train_accuracy > exact - 0.035, name


class TestFunctionFClaims:
    def test_cmp_discovers_linear_structure(self, cfg):
        # Figure 18 / Figures 9 vs 13: on Function f CMP builds a far
        # smaller tree than univariate algorithms, via linear splits.
        ds = generate_function_f(20_000, seed=5)
        cmp_rec, cmp_res = run_builder(CMPBuilder(cfg.with_(max_depth=10)), ds)
        sp_rec, __ = run_builder(SprintBuilder(cfg.with_(max_depth=10)), ds)
        assert cmp_res.stats.linear_splits >= 1
        assert cmp_rec.nodes < sp_rec.nodes
        assert cmp_rec.train_accuracy > sp_rec.train_accuracy - 0.02

    def test_cmp_faster_than_univariate_on_f(self, cfg):
        ds = generate_function_f(20_000, seed=5)
        cmp_rec, __ = run_builder(CMPBuilder(cfg.with_(max_depth=10)), ds)
        sp_rec, __ = run_builder(SprintBuilder(cfg.with_(max_depth=10)), ds)
        assert cmp_rec.simulated_ms < sp_rec.simulated_ms


class TestPredictionClaim:
    def test_prediction_hits_meaningfully(self, results):
        # §2.2: "about 80% of the predictions are accurate" on Function 2.
        # Our measured rate is lower (documented in EXPERIMENTS.md) but must
        # be far better than the 1/p ~ 11% random-attribute baseline.
        record = results["CMP-B"][0]
        assert record.prediction_accuracy > 0.3
