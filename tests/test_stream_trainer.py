"""Tests for the one-pass bounded-memory streaming trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal
from repro.eval.metrics import accuracy
from repro.stream import SKETCH_LEDGER_PREFIX, StreamingTrainer, stream_chunks


@pytest.fixture(scope="module")
def stream_config() -> BuilderConfig:
    return BuilderConfig(n_intervals=32, max_depth=8, min_records=20)


@pytest.fixture(scope="module")
def f2_stream():
    return generate_agrawal("F2", 12_000, seed=11)


class TestStreamingTrainer:
    def test_learns_and_is_deterministic(self, f2_stream, stream_config):
        a = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        b = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        assert a.tree.render() == b.tree.render()
        assert accuracy(a.tree, f2_stream) > 0.8
        assert a.n_records == f2_stream.n_records
        assert a.tree.n_nodes > a.tree.n_leaves

    def test_chunking_robustness(self, f2_stream, stream_config):
        """Split-attempt timing depends on chunk boundaries, so trees may
        differ structurally across chunkings — but quality must not: the
        internal re-chunking keeps even a single giant chunk growing a
        full tree, and identical chunkings are bit-identical."""
        one = StreamingTrainer(f2_stream.schema, stream_config).fit(
            f2_stream, chunk_size=f2_stream.n_records
        )
        many = StreamingTrainer(f2_stream.schema, stream_config).fit_stream(
            stream_chunks(f2_stream, 157)
        )
        again = StreamingTrainer(f2_stream.schema, stream_config).fit_stream(
            stream_chunks(f2_stream, 157)
        )
        assert many.tree.render() == again.tree.render()
        acc_one = accuracy(one.tree, f2_stream)
        acc_many = accuracy(many.tree, f2_stream)
        assert acc_one > 0.8 and acc_many > 0.8
        assert abs(acc_one - acc_many) < 0.08

    def test_ledger_balanced_after_fit(self, f2_stream, stream_config):
        result = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        assert result.stats.memory.current == 0
        assert result.stats.memory.peak > 0
        assert result.sketch_bytes_peak > 0
        # Every ledger entry the trainer made is namespaced.
        assert not result.spilled_nodes
        assert not result.declined_nodes

    def test_memory_budget_spills_and_declines(self, f2_stream, stream_config):
        budget = 60_000
        trainer = StreamingTrainer(
            f2_stream.schema, stream_config, memory_budget_bytes=budget
        )
        result = trainer.fit(f2_stream)
        assert result.spilled_nodes or result.declined_nodes
        assert result.sketch_bytes_peak <= budget
        assert result.stats.memory.current == 0
        # Degraded, not destroyed: the tree still predicts usefully.
        assert accuracy(result.tree, f2_stream) > 0.6

    def test_split_meta_counts_match_members(self, f2_stream, stream_config):
        trainer = StreamingTrainer(
            f2_stream.schema, stream_config, record_members=True
        )
        result = trainer.fit(f2_stream, chunk_size=512)
        assert result.members is not None
        assert result.split_meta
        nodes = {n.node_id: n for n in result.tree.iter_nodes()}
        for node_id, meta in result.split_meta.items():
            rows = result.members[node_id]
            assert meta.n_records == len(rows)
            observed = np.bincount(
                f2_stream.y[rows], minlength=f2_stream.n_classes
            )
            np.testing.assert_array_equal(
                observed, np.asarray(meta.class_counts, dtype=np.int64)
            )
            # Decision-time counts + post-split pass-through arrivals
            # equal the node's final counts.
            node = nodes[node_id]
            child_total = np.zeros(f2_stream.n_classes)
            for child in (node.left, node.right):
                child_total += child.class_counts
            np.testing.assert_allclose(
                node.class_counts, np.asarray(meta.class_counts) + child_total
            )

    def test_root_counts_cover_stream(self, f2_stream, stream_config):
        result = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        np.testing.assert_array_equal(
            result.tree.root.class_counts.astype(np.int64),
            np.bincount(f2_stream.y, minlength=f2_stream.n_classes),
        )

    def test_accuracy_close_to_batch(self, f2_stream, stream_config):
        streamed = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        batch = CMPSBuilder(stream_config).build(f2_stream)
        s_acc = accuracy(streamed.tree, f2_stream)
        b_acc = accuracy(batch.tree, f2_stream)
        # One-pass growth trades a bounded amount of accuracy for the
        # rescan-free build (§1.1 trade-off, now with an explicit bound).
        assert s_acc > b_acc - 0.12

    def test_categorical_splits_supported(self, mixed_types, stream_config):
        trainer = StreamingTrainer(mixed_types.schema, stream_config)
        result = trainer.fit(mixed_types, chunk_size=256)
        assert accuracy(result.tree, mixed_types) > 0.7

    def test_sketch_ledger_prefix_used(self, f2_stream, stream_config, monkeypatch):
        from repro.io.metrics import MemoryTracker

        names: set[str] = set()
        orig = MemoryTracker.allocate

        def spy(self, name, nbytes):
            names.add(name)
            return orig(self, name, nbytes)

        monkeypatch.setattr(MemoryTracker, "allocate", spy)
        StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        assert names
        assert all(n.startswith(SKETCH_LEDGER_PREFIX) for n in names)

    def test_rank_error_metadata_exposed(self, f2_stream, stream_config):
        result = StreamingTrainer(f2_stream.schema, stream_config).fit(f2_stream)
        for meta in result.split_meta.values():
            assert meta.eps == result.eps
            assert meta.q >= 2
            for err in meta.rank_errors.values():
                assert 0 <= err <= 2 * meta.eps * meta.n_records * f2_stream.n_classes
