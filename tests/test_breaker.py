"""Tests for circuit breaking (serve/breaker.py) and graceful degradation."""

import numpy as np
import pytest

from repro.eval.treegen import random_batch, random_tree
from repro.obs import MetricsRegistry, record_admission, record_breaker
from repro.serve import (
    PRIOR_FALLBACK,
    AdmissionController,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpen,
    ServingEngine,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve.faults import FlakyModel, ModelExecutionError


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures_only(self):
        b = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            b.record_failure()
        b.record_success()  # resets the streak
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED
        b.record_failure()  # third consecutive: trip
        assert b.state == OPEN
        assert b.snapshot()["trips"] == 1

    def test_open_rejects_until_timeout(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()
        assert b.snapshot()["rejections"] == 1
        clock.advance(9.0)
        assert not b.allow()
        clock.advance(1.0)
        assert b.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=clock)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()  # the probe
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=2, reset_timeout_s=5.0, clock=clock)
        b.record_failure()
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_failure()  # probe failed: straight back to open
        assert b.state == OPEN
        assert b.snapshot()["trips"] == 2
        assert not b.allow()
        clock.advance(5.0)  # the timeout restarts from the re-trip
        assert b.state == HALF_OPEN

    def test_half_open_bounds_concurrent_probes(self):
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            half_open_max_probes=2,
            clock=clock,
        )
        b.record_failure()
        clock.advance(1.0)
        assert b.allow() and b.allow()  # two probes granted
        assert not b.allow()  # third is rejected
        assert b.snapshot()["probes"] == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_s=-1.0)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_max_probes=0)


def _flaky_engine(fail_calls, seed=40, clock=None, **engine_kwargs):
    """Engine + always-registered flaky model, one model call per request."""
    tree = random_tree(depth=4, seed=seed)
    flaky = FlakyModel(tree.compiled(), fail_calls=fail_calls)
    policy = BreakerPolicy(
        failure_threshold=3,
        reset_timeout_s=10.0,
        clock=clock if clock is not None else FakeClock(),
    )
    engine = ServingEngine(
        breaker_policy=policy, shard_retries=0, **engine_kwargs
    )
    key = engine.registry.register(flaky)
    return engine, tree, flaky, key


class TestEngineBreakerIntegration:
    def test_trip_then_reject_then_recover(self):
        clock = FakeClock()
        # Calls 0-2 fail (tripping the breaker); later calls are healthy.
        engine, tree, flaky, key = _flaky_engine({0, 1, 2}, clock=clock)
        X = random_batch(tree.schema, 20, seed=12)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        assert engine.breaker(key).state == OPEN
        # While open, the model is not executed at all.
        calls_before = flaky.calls
        with pytest.raises(CircuitOpen):
            engine.predict(key, X)
        assert flaky.calls == calls_before
        assert engine.registry.stats(key).snapshot()["breaker_rejections"] == 1
        # After the reset timeout, the probe runs and recovery is full.
        clock.advance(10.0)
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))
        assert engine.breaker(key).state == CLOSED
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        engine, tree, flaky, key = _flaky_engine({0, 1, 2, 3}, clock=clock)
        X = random_batch(tree.schema, 10, seed=13)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        clock.advance(10.0)
        with pytest.raises(ModelExecutionError):  # probe (call 3) fails
            engine.predict(key, X)
        assert engine.breaker(key).state == OPEN
        clock.advance(10.0)
        np.testing.assert_array_equal(engine.predict(key, X), tree.predict(X))
        assert engine.breaker(key).state == CLOSED

    def test_fallback_model_serves_while_open(self):
        clock = FakeClock()
        engine, tree, flaky, key = _flaky_engine({0, 1, 2}, clock=clock)
        fallback_tree = random_tree(depth=3, seed=41)
        fb_key = engine.registry.register(fallback_tree)
        engine.fallback = fb_key
        X = random_batch(tree.schema, 15, seed=14)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        got = engine.predict(key, X)
        np.testing.assert_array_equal(got, fallback_tree.predict(X))
        snap = engine.registry.stats(key).snapshot()
        assert snap["breaker_rejections"] == 1
        assert snap["fallbacks"] == 1

    def test_prior_fallback_predict_and_proba(self):
        clock = FakeClock()
        engine, tree, flaky, key = _flaky_engine({0, 1, 2}, clock=clock)
        engine.fallback = PRIOR_FALLBACK
        X = random_batch(tree.schema, 12, seed=15)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        compiled = tree.compiled()
        totals = compiled.counts.sum(axis=0)
        labels = engine.predict(key, X)
        np.testing.assert_array_equal(
            labels, np.full(len(X), int(np.argmax(totals)))
        )
        proba = engine.predict_proba(key, X)
        np.testing.assert_allclose(proba, np.tile(totals / totals.sum(), (12, 1)))
        # apply has no meaningful prior: the circuit error surfaces.
        with pytest.raises(CircuitOpen):
            engine.apply(key, X)
        assert engine.registry.stats(key).snapshot()["fallbacks"] == 2

    def test_no_fallback_raises_circuit_open(self):
        clock = FakeClock()
        engine, tree, flaky, key = _flaky_engine({0, 1, 2}, clock=clock)
        X = random_batch(tree.schema, 5, seed=16)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        with pytest.raises(CircuitOpen, match="no fallback"):
            engine.predict(key, X)

    def test_no_policy_means_no_breaker(self):
        engine = ServingEngine()
        tree = random_tree(depth=3, seed=42)
        key = engine.registry.register(tree)
        assert engine.breaker(key) is None
        assert engine.breakers() == {}

    def test_breakers_are_per_model(self):
        clock = FakeClock()
        engine, tree, flaky, key = _flaky_engine({0, 1, 2}, clock=clock)
        healthy = random_tree(depth=3, seed=43)
        healthy_key = engine.registry.register(healthy)
        X = random_batch(tree.schema, 8, seed=17)
        Xh = random_batch(healthy.schema, 8, seed=18)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        # The flaky model's open breaker does not affect the healthy one.
        np.testing.assert_array_equal(
            engine.predict(healthy_key, Xh), healthy.predict(Xh)
        )
        assert engine.breaker(key).state == OPEN
        assert engine.breaker(healthy_key).state == CLOSED


class TestBreakerMetricsExport:
    def test_record_breaker_gauges_and_counters(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=99.0, clock=clock)
        b.record_failure()
        b.allow()
        reg = MetricsRegistry()
        record_breaker(reg, b, {"model": "abc"})
        labels = {"model": "abc"}
        assert reg.gauge("cmp_serve_breaker_state", labels=labels).value == 2.0
        assert (
            reg.counter("cmp_serve_breaker_trips_total", labels=labels).value == 1.0
        )
        assert (
            reg.counter(
                "cmp_serve_breaker_open_rejections_total", labels=labels
            ).value
            == 1.0
        )

    def test_record_admission_gauges_and_counters(self):
        gate = AdmissionController(max_depth=3)
        gate.try_acquire()
        gate.try_acquire()
        gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        reg = MetricsRegistry()
        record_admission(reg, gate, {"engine": "e0"})
        labels = {"engine": "e0"}
        assert reg.gauge("cmp_serve_queue_depth", labels=labels).value == 2.0
        assert reg.gauge("cmp_serve_queue_depth_limit", labels=labels).value == 3.0
        assert reg.gauge("cmp_serve_queue_peak_depth", labels=labels).value == 3.0
        assert reg.counter("cmp_serve_admitted_total", labels=labels).value == 3.0
        assert (
            reg.counter("cmp_serve_admission_shed_total", labels=labels).value == 1.0
        )
