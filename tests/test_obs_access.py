"""Tests for repro.obs.access: per-request logging across the serving stack.

The load-bearing invariant: **one record per request** — the engine
emits exactly one record per call it receives (whatever the outcome),
the micro-batcher exactly one per submitted request — and the record's
``outcome`` mirrors the aggregate ``ServingStats`` counters exactly.
"""

from __future__ import annotations

import io

import pytest

from repro.eval.treegen import random_batch, random_tree
from repro.obs import AccessLog, MetricsRegistry, Tracer, load_access_log
from repro.serve import (
    PRIOR_FALLBACK,
    BreakerPolicy,
    CircuitOpen,
    DeadlineExceeded,
    MicroBatcher,
    Overloaded,
    ServingEngine,
    StuckModel,
)
from repro.serve.faults import FlakyModel, ModelExecutionError


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _engine(access_log, **kwargs):
    tree = random_tree(depth=4, seed=30)
    engine = ServingEngine(access_log=access_log, **kwargs)
    key = engine.registry.register(tree)
    X = random_batch(tree.schema, 50, seed=31)
    return engine, tree, key, X


class TestRecordSchema:
    def test_jsonl_round_trip(self, tmp_path):
        log = AccessLog()
        log.record(
            source="engine",
            endpoint="ep",
            fingerprint="abc123",
            route="direct",
            method="predict",
            rows=10,
            outcome="ok",
            latency_s=0.0123,
            trace_id=7,
        )
        log.record(
            source="batcher",
            endpoint="ep",
            fingerprint=None,
            route=None,
            method="predict",
            rows=1,
            outcome="deadline",
            latency_s=0.5,
            queue_wait_s=0.4,
            batch_id=3,
        )
        path = tmp_path / "access.jsonl"
        assert log.write_jsonl(str(path)) == 2
        loaded = load_access_log(str(path))
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in log.records()
        ]
        assert loaded[0].trace_id == 7
        assert loaded[1].batch_id == 3
        assert loaded[1].queue_wait_s == pytest.approx(0.4)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            AccessLog().record(
                source="engine",
                endpoint="e",
                fingerprint=None,
                route=None,
                method="predict",
                rows=1,
                outcome="maybe",
                latency_s=0.0,
            )

    def test_malformed_line_names_line_number(self):
        buf = io.StringIO('{"ts": 1.0}\n')
        with pytest.raises(ValueError, match="line 1"):
            load_access_log(buf)

    def test_capacity_evicts_oldest(self):
        log = AccessLog(capacity=2)
        for i in range(3):
            log.record(
                source="engine",
                endpoint=str(i),
                fingerprint=None,
                route=None,
                method="predict",
                rows=1,
                outcome="ok",
                latency_s=0.0,
            )
        assert len(log) == 2
        assert log.dropped == 1
        assert [r.endpoint for r in log.records()] == ["1", "2"]


class TestEngineOutcomes:
    def test_one_ok_record_per_engine_call(self):
        log = AccessLog()
        engine, tree, key, X = _engine(log)
        engine.predict(key, X)
        engine.predict_proba(key, X[:10])
        recs = log.records()
        assert len(recs) == 2
        assert [r.outcome for r in recs] == ["ok", "ok"]
        assert [r.method for r in recs] == ["predict", "predict_proba"]
        assert [r.rows for r in recs] == [50, 10]
        assert all(r.source == "engine" for r in recs)
        assert all(r.route == "direct" for r in recs)
        assert all(r.fingerprint == key for r in recs)
        assert all(r.latency_s > 0 for r in recs)
        snap = engine.registry.stats(key).snapshot()
        assert log.outcome_counts()["ok"] == snap["batches"] == 2

    def test_shed_record(self):
        log = AccessLog()
        engine, tree, key, X = _engine(log, max_queue_depth=1)
        assert engine.admission.try_acquire()  # hog the only permit
        try:
            with pytest.raises(Overloaded):
                engine.predict(key, X)
        finally:
            engine.admission.release()
        (rec,) = log.records()
        assert rec.outcome == "shed"
        assert engine.registry.stats(key).snapshot()["shed"] == 1

    def test_deadline_record(self):
        log = AccessLog()
        engine, tree, key, X = _engine(log)
        with pytest.raises(DeadlineExceeded):
            engine.predict(key, X, deadline=1e-12)
        (rec,) = log.records()
        assert rec.outcome == "deadline"
        assert engine.registry.stats(key).snapshot()["timeouts"] == 1

    def test_error_record_names_exception(self):
        log = AccessLog()
        engine, tree, key, X = _engine(log)
        with pytest.raises(KeyError):
            engine.predict("no-such-model", X)
        (rec,) = log.records()
        assert rec.outcome == "error"
        assert rec.error == "KeyError"
        assert rec.endpoint == "no-such-model"
        assert rec.fingerprint is None

    def _tripped_engine(self, log, **kwargs):
        tree = random_tree(depth=4, seed=32)
        flaky = FlakyModel(tree.compiled(), fail_calls={0, 1, 2})
        policy = BreakerPolicy(
            failure_threshold=3, reset_timeout_s=10.0, clock=FakeClock()
        )
        engine = ServingEngine(
            access_log=log, breaker_policy=policy, shard_retries=0, **kwargs
        )
        key = engine.registry.register(flaky)
        X = random_batch(tree.schema, 20, seed=33)
        for _ in range(3):
            with pytest.raises(ModelExecutionError):
                engine.predict(key, X)
        return engine, key, X

    def test_breaker_record_when_open_without_fallback(self):
        log = AccessLog()
        engine, key, X = self._tripped_engine(log)
        with pytest.raises(CircuitOpen):
            engine.predict(key, X)
        outcomes = [r.outcome for r in log.records()]
        assert outcomes == ["error", "error", "error", "breaker"]
        assert all(
            r.error == "ModelExecutionError" for r in log.records()[:3]
        )
        snap = engine.registry.stats(key).snapshot()
        assert snap["breaker_rejections"] == 1 and snap["fallbacks"] == 0

    def test_fallback_record_when_degraded_answer_served(self):
        log = AccessLog()
        engine, key, X = self._tripped_engine(log, fallback=PRIOR_FALLBACK)
        engine.predict(key, X)  # answered by the prior
        assert log.records()[-1].outcome == "fallback"
        snap = engine.registry.stats(key).snapshot()
        assert snap["fallbacks"] == 1
        # Exactly one record per engine call, across all outcomes.
        assert len(log.records()) == snap["batches"] + snap["shed"] + snap[
            "timeouts"
        ] + snap["breaker_rejections"] + 3  # 3 = the seeding errors

    def test_trace_exemplar_resolves_to_request_span(self):
        log = AccessLog()
        tracer = Tracer()
        engine, tree, key, X = _engine(log, tracer=tracer)
        engine.predict(key, X)
        (rec,) = log.records()
        spans = {sp.span_id: sp for sp in tracer.spans()}
        assert spans[rec.trace_id].name == "request"
        assert spans[rec.trace_id].attrs["outcome"] == "ok"

    def test_untraced_records_have_no_trace_id(self):
        log = AccessLog()
        engine, tree, key, X = _engine(log)
        engine.predict(key, X)
        assert log.records()[0].trace_id is None


class TestBatcherOutcomes:
    def test_one_record_per_submitted_request(self):
        log = AccessLog()
        tree = random_tree(depth=4, seed=34)
        engine = ServingEngine(access_log=log)
        key = engine.registry.register(tree)
        X = random_batch(tree.schema, 12, seed=35)
        with MicroBatcher(engine, key, max_batch=4, max_delay_s=0.01) as mb:
            futures = [mb.submit(row) for row in X]
            for f in futures:
                f.result(timeout=10)
        batcher_recs = [r for r in log.records() if r.source == "batcher"]
        engine_recs = [r for r in log.records() if r.source == "engine"]
        assert len(batcher_recs) == 12
        assert all(r.outcome == "ok" for r in batcher_recs)
        assert all(r.rows == 1 for r in batcher_recs)
        assert all(r.batch_id is not None for r in batcher_recs)
        assert all(r.queue_wait_s is not None for r in batcher_recs)
        # Coalescing: several requests share a batch id, and each flush
        # produced exactly one engine record.
        assert len({r.batch_id for r in batcher_recs}) == len(engine_recs)
        snap = engine.registry.stats(key).snapshot()
        assert snap["requests"] == 12 and snap["batches"] == len(engine_recs)

    def test_shed_submission_logged(self):
        log = AccessLog()
        tree = random_tree(depth=3, seed=36)
        stuck = StuckModel(tree.compiled())
        engine = ServingEngine(access_log=log)
        key = engine.registry.register(stuck)
        X = random_batch(tree.schema, 4, seed=37)
        mb = MicroBatcher(engine, key, max_delay_s=0.001, max_pending=2)
        try:
            first = mb.submit(X[0])
            assert stuck.entered.wait(5.0)
            pending = [mb.submit(X[1]), mb.submit(X[2])]
            with pytest.raises(Overloaded):
                mb.submit(X[3])
            stuck.release.set()
            for f in [first, *pending]:
                f.result(timeout=5.0)
        finally:
            stuck.release.set()
            mb.close()
        batcher_recs = [r for r in log.records() if r.source == "batcher"]
        assert len(batcher_recs) == 4  # 3 served + 1 shed
        assert sorted(r.outcome for r in batcher_recs) == [
            "ok",
            "ok",
            "ok",
            "shed",
        ]
        shed = next(r for r in batcher_recs if r.outcome == "shed")
        assert shed.batch_id is None  # never made it into a flush

    def test_expired_submission_logged_as_deadline(self):
        log = AccessLog()
        tree = random_tree(depth=3, seed=38)
        engine = ServingEngine(access_log=log)
        key = engine.registry.register(tree)
        row = random_batch(tree.schema, 1, seed=39)[0]
        with MicroBatcher(engine, key, max_delay_s=0.001) as mb:
            f = mb.submit(row, deadline_s=1e-9)
            with pytest.raises(DeadlineExceeded):
                f.result(timeout=10)
        batcher_recs = [r for r in log.records() if r.source == "batcher"]
        assert len(batcher_recs) == 1
        assert batcher_recs[0].outcome == "deadline"


class TestRedMetrics:
    def test_counters_and_latency_emitted(self):
        reg = MetricsRegistry()
        log = AccessLog(metrics=reg)
        engine, tree, key, X = _engine(log)
        engine.predict(key, X)
        engine.predict(key, X)
        with pytest.raises(KeyError):
            engine.predict("missing", X)
        fp = key[:12]
        labels = {"endpoint": key, "fingerprint": fp, "outcome": "ok"}
        assert reg.counter("cmp_requests_total", labels=labels).value == 2
        err_labels = {"endpoint": "missing", "fingerprint": "unresolved"}
        assert (
            reg.counter("cmp_request_errors_total", labels=err_labels).value
            == 1
        )
        hist = reg.histogram(
            "cmp_request_latency_seconds",
            labels={"endpoint": key, "fingerprint": fp},
        )
        assert hist.count == 2
        assert hist.sum > 0

    def test_engine_without_log_records_nothing(self):
        engine, tree, key, X = _engine(None)
        engine.predict(key, X)
        assert engine.access_log is None
