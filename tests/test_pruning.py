"""Tests for MDL and PUBLIC(1) pruning."""

import numpy as np
import pytest

from repro.core.splits import CategoricalSplit, LinearSplit, NumericSplit
from repro.core.tree import DecisionTree, TreeAccount
from repro.data.schema import Schema, continuous
from repro.pruning.mdl import (
    class_entropy_bits,
    leaf_cost,
    mdl_prune,
    split_cost,
    subtree_cost,
)
from repro.pruning.public import OPEN_LEAF_BOUND, public_prune_pass


def schema2():
    return Schema((continuous("a"), continuous("b")), ("x", "y"))


def useless_tree():
    """A split that separates nothing: both children mirror the parent."""
    account = TreeAccount()
    root = account.new_node(0, np.array([50.0, 50.0]))
    left = account.new_node(1, np.array([25.0, 25.0]))
    right = account.new_node(1, np.array([25.0, 25.0]))
    root.split = NumericSplit(0, 0.0)
    root.left, root.right = left, right
    return DecisionTree(root, schema2()), account


def useful_tree():
    """A split that perfectly separates the classes."""
    account = TreeAccount()
    root = account.new_node(0, np.array([50.0, 50.0]))
    left = account.new_node(1, np.array([50.0, 0.0]))
    right = account.new_node(1, np.array([0.0, 50.0]))
    root.split = NumericSplit(0, 0.0)
    root.left, root.right = left, right
    return DecisionTree(root, schema2()), account


class TestCosts:
    def test_entropy_bits(self):
        assert class_entropy_bits(np.array([10.0, 0.0])) == 0.0
        assert class_entropy_bits(np.array([8.0, 8.0])) == pytest.approx(16.0)
        assert class_entropy_bits(np.zeros(2)) == 0.0

    def test_leaf_cost_grows_with_impurity(self):
        pure = useful_tree()[0].root.left
        impure = useless_tree()[0].root.left
        assert leaf_cost(impure, 2) > leaf_cost(pure, 2)

    def test_split_costs_by_kind(self):
        numeric = split_cost(NumericSplit(0, 1.0), 4, 100)
        subset = split_cost(CategoricalSplit(0, (True, False, True)), 4, 100)
        linear = split_cost(LinearSplit(0, 1, b=1.0, c=0.0), 4, 100)
        assert numeric > 0
        assert subset == pytest.approx(np.log2(4) + 3)
        assert linear > numeric  # two attributes, two coefficients

    def test_split_cost_unknown_type(self):
        with pytest.raises(TypeError):
            split_cost(object(), 4, 100)  # type: ignore[arg-type]

    def test_subtree_cost_decomposes(self):
        tree, __ = useful_tree()
        total = subtree_cost(tree.root, 2, 2)
        parts = (
            1.0
            + split_cost(tree.root.split, 2, 100)
            + leaf_cost(tree.root.left, 2)
            + leaf_cost(tree.root.right, 2)
        )
        assert total == pytest.approx(parts)


class TestMdlPrune:
    def test_prunes_useless_split(self):
        tree, __ = useless_tree()
        removed = mdl_prune(tree)
        assert removed == 2
        assert tree.root.is_leaf

    def test_keeps_useful_split(self):
        tree, __ = useful_tree()
        removed = mdl_prune(tree)
        assert removed == 0
        assert not tree.root.is_leaf


class TestPublicPrune:
    def test_open_leaf_protected_by_lower_bound(self):
        # A useless split whose children are still open must NOT be pruned
        # aggressively... actually PUBLIC(1) uses cost >= 1 for open leaves,
        # which makes the subtree look *cheap*, so pruning is conservative:
        # the node is kept because the subtree bound is low.
        tree, __ = useless_tree()
        open_ids = {tree.root.left.node_id, tree.root.right.node_id}
        removed = public_prune_pass(tree.root, open_ids, n_classes=2, n_attributes=2)
        assert not removed
        assert not tree.root.is_leaf

    def test_closed_useless_subtree_pruned(self):
        tree, __ = useless_tree()
        child_ids = {tree.root.left.node_id, tree.root.right.node_id}
        removed = public_prune_pass(tree.root, set(), n_classes=2, n_attributes=2)
        assert tree.root.is_leaf
        assert removed == child_ids

    def test_useful_subtree_survives(self):
        tree, __ = useful_tree()
        removed = public_prune_pass(tree.root, set(), n_classes=2, n_attributes=2)
        assert not removed
        assert not tree.root.is_leaf

    def test_conservative_vs_final_mdl(self):
        # Anything PUBLIC(1) prunes with open leaves would also be pruned
        # by a final MDL pass: check on a grown tree.
        from repro.config import BuilderConfig
        from repro.core.cmp_s import CMPSBuilder
        from repro.data.synthetic import generate_agrawal

        ds = generate_agrawal("F2", 3000, seed=1)
        cfg = BuilderConfig(n_intervals=24, max_depth=6, min_records=20)
        integrated = CMPSBuilder(cfg.with_(prune="public")).build(ds).tree
        post_hoc = CMPSBuilder(cfg.with_(prune="mdl")).build(ds).tree
        assert integrated.n_nodes >= post_hoc.n_nodes

    def test_bound_constant(self):
        assert OPEN_LEAF_BOUND == 1.0


class TestNumericValueBits:
    """Regression: split_cost charged log2(n_records) value bits for every
    numeric split, over-pruning splits whose threshold was chosen from a
    handful of candidates.  With the candidate count recorded on the
    split, the charge is log2(n_candidates)."""

    def test_candidate_count_lowers_cost(self):
        cheap = split_cost(NumericSplit(0, 0.5, n_candidates=2), 2, 900.0)
        expensive = split_cost(NumericSplit(0, 0.5), 2, 900.0)
        assert cheap == pytest.approx(1.0 + 1.0)  # attr bit + 1 value bit
        assert expensive == pytest.approx(1.0 + np.log2(900.0))
        assert cheap < expensive

    def borderline_tree(self, n_candidates):
        """A genuinely useful split that log2(n_records) bits wipe out."""
        account = TreeAccount()
        root = account.new_node(0, np.array([900.0, 124.0]))
        left = account.new_node(1, np.array([470.0, 42.0]))
        right = account.new_node(1, np.array([430.0, 82.0]))
        root.split = NumericSplit(0, 0.5, n_candidates=n_candidates)
        root.left, root.right = left, right
        return DecisionTree(root, schema2())

    def test_split_survives_with_candidate_count(self):
        tree = self.borderline_tree(n_candidates=2)
        assert mdl_prune(tree) == 0
        assert not tree.root.is_leaf

    def test_same_split_pruned_under_fallback(self):
        tree = self.borderline_tree(n_candidates=None)
        assert mdl_prune(tree) == 2
        assert tree.root.is_leaf
