"""The brute-force oracle must itself be trustworthy: these tests pin its
split optima against hand-computable cases and independent enumerations."""

from itertools import combinations

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.core.gini import gini_partition
from repro.core.splits import LinearSplit, NumericSplit
from repro.data.dataset import Dataset
from repro.data.schema import Schema, categorical, continuous
from repro.verify.oracle import (
    OracleBuilder,
    best_categorical_split,
    best_linear_split,
    best_numeric_split,
    oracle_best_split,
)

from conftest import assert_tree_consistent


def two_col_schema():
    return Schema((continuous("a"), continuous("b")), ("neg", "pos"))


class TestBestNumericSplit:
    def test_separable_column_found_exactly(self, rng):
        X = np.column_stack([rng.normal(size=400), rng.normal(size=400)])
        y = (X[:, 1] > 0.25).astype(np.int64)
        split, g = best_numeric_split(X, y, two_col_schema())
        assert isinstance(split, NumericSplit)
        assert split.attr == 1
        assert g == pytest.approx(0.0)
        # The threshold is the largest data value on the <= side.
        assert split.threshold == X[X[:, 1] <= 0.25, 1].max()

    def test_tie_breaks_to_lowest_attr(self, rng):
        col = rng.normal(size=200)
        X = np.column_stack([col, col])  # identical columns, identical ginis
        y = (col > 0).astype(np.int64)
        split, __ = best_numeric_split(X, y, two_col_schema())
        assert split.attr == 0

    def test_constant_columns_yield_none(self):
        X = np.ones((50, 2))
        y = np.arange(50) % 2
        split, g = best_numeric_split(X, y, two_col_schema())
        assert split is None
        assert np.isinf(g)


class TestBestCategoricalSplit:
    def test_two_classes_heuristic_is_exhaustive(self, rng):
        # With two classes Breiman ordering is provably optimal, so the
        # two procedures must return the same gini.
        codes = rng.integers(0, 6, 300)
        y = rng.integers(0, 2, 300)
        __, hg, __, eg = best_categorical_split(codes, y, 6, 2)
        assert hg == pytest.approx(eg)

    def test_exhaustive_never_worse_than_heuristic(self, rng):
        codes = rng.integers(0, 7, 400)
        y = rng.integers(0, 3, 400)  # 3 classes: heuristic may be beaten
        __, hg, __, eg = best_categorical_split(codes, y, 7, 3)
        assert eg <= hg + 1e-12

    def test_exhaustive_matches_independent_enumeration(self, rng):
        codes = rng.integers(0, 5, 120)
        y = rng.integers(0, 3, 120)
        __, __, mask, eg = best_categorical_split(codes, y, 5, 3)
        # Re-enumerate bipartitions with plain itertools.
        counts = np.zeros((5, 3))
        np.add.at(counts, (codes, y), 1.0)
        present = [k for k in range(5) if counts[k].sum() > 0]
        totals = counts.sum(axis=0)
        best = np.inf
        for r in range(1, len(present)):
            for left in combinations(present, r):
                lc = counts[list(left)].sum(axis=0)
                best = min(best, float(gini_partition(lc, totals - lc)))
        assert eg == pytest.approx(best)
        # The returned mask realizes its reported gini.
        lc = counts[np.nonzero(mask)[0]].sum(axis=0)
        assert float(gini_partition(lc, totals - lc)) == pytest.approx(eg)

    def test_single_category_yields_none(self):
        codes = np.zeros(40, dtype=np.int64)
        y = np.arange(40) % 2
        mask, hg, ex_mask, eg = best_categorical_split(codes, y, 4, 2)
        assert mask is None and ex_mask is None
        assert np.isinf(hg) and np.isinf(eg)


class TestBestLinearSplit:
    def test_diagonal_needs_linear(self, rng):
        X = rng.uniform(0, 1, (80, 2))
        y = (X[:, 0] + X[:, 1] >= 1.0).astype(np.int64)
        schema = Schema((continuous("x"), continuous("y")), ("u", "o"))
        lin, lg = best_linear_split(X, y, schema)
        __, ng = best_numeric_split(X, y, schema)
        assert isinstance(lin, LinearSplit)
        assert lg == pytest.approx(0.0, abs=1e-12)
        assert lg < ng  # no axis-parallel cut separates the diagonal
        # The split it claims must actually realize the partition.
        left = lin.goes_left(X)
        lc = np.bincount(y[left], minlength=2)
        rc = np.bincount(y[~left], minlength=2)
        assert gini_partition(lc.astype(float), rc.astype(float)) == pytest.approx(lg)

    def test_too_few_records(self):
        schema = Schema((continuous("x"), continuous("y")), ("u", "o"))
        lin, lg = best_linear_split(np.ones((1, 2)), np.zeros(1, dtype=np.int64), schema)
        assert lin is None and np.isinf(lg)


class TestOracleBestSplit:
    def test_winner_is_family_minimum(self, rng):
        n = 200
        X = np.column_stack(
            [rng.normal(size=n), rng.integers(0, 4, n).astype(float)]
        )
        y = ((X[:, 0] > 0) ^ (X[:, 1] >= 2)).astype(np.int64)
        schema = Schema(
            (continuous("a"), categorical("c", tuple("wxyz"))), ("n", "p")
        )
        best = oracle_best_split(X, y, schema)
        assert best.found
        assert best.gini == pytest.approx(
            min(best.numeric_gini, best.categorical_exhaustive_gini)
        )

    def test_linear_family_off_by_default(self, rng):
        X = rng.uniform(0, 1, (60, 2))
        y = (X.sum(axis=1) >= 1).astype(np.int64)
        best = oracle_best_split(X, y, two_col_schema())
        assert np.isinf(best.linear_gini)
        with_lin = oracle_best_split(X, y, two_col_schema(), linear=True)
        assert with_lin.linear_gini <= best.numeric_gini


class TestOracleBuilder:
    def config(self, **kw):
        base = dict(n_intervals=16, max_depth=6, min_records=10, prune="none")
        base.update(kw)
        return BuilderConfig(**base)

    def test_perfect_on_separable(self, rng):
        X = np.column_stack([rng.normal(size=300), rng.normal(size=300)])
        y = (X[:, 0] > 0.1).astype(np.int64)
        ds = Dataset(X, y, two_col_schema())
        result = OracleBuilder(self.config()).build(ds)
        assert np.array_equal(result.tree.predict(X), y)
        assert_tree_consistent(result.tree, ds)

    def test_stopping_rules(self, rng):
        X = rng.uniform(0, 1, (400, 2))
        y = rng.integers(0, 2, 400)  # pure noise: deep growth if allowed
        ds = Dataset(X, y, two_col_schema())
        result = OracleBuilder(self.config(max_depth=3, min_records=30)).build(ds)
        assert result.tree.depth <= 3
        for node in result.tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_records >= 30
