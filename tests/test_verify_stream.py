"""Tests for the streaming differential harness and metamorphic extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BuilderConfig
from repro.data.synthetic import generate_agrawal
from repro.stream import StreamingTrainer
from repro.verify.metamorphic import (
    STREAM_METAMORPHIC_CHECKS,
    run_stream_metamorphic,
)
from repro.verify.stream import (
    STREAM_ORDERS,
    _grid_nonatomic_frac,
    check_streaming_tree,
    run_stream_battery,
    run_stream_differential,
)

CFG = BuilderConfig(n_intervals=32, max_depth=8, min_records=20)


class TestGridNonatomicFrac:
    def test_distinct_values_atomic(self):
        values = np.arange(100, dtype=np.float64)
        edges = np.array([24.0, 49.0, 74.0])
        # Every interval holds many distinct values: fully non-atomic.
        assert _grid_nonatomic_frac(values, edges) == pytest.approx(0.25)

    def test_constant_interval_is_atomic(self):
        # All mass on one value -> every interval is atomic -> frac 0.
        values = np.full(50, 7.0)
        edges = np.array([3.0, 7.0, 11.0])
        assert _grid_nonatomic_frac(values, edges) == 0.0

    def test_empty_edges(self):
        assert _grid_nonatomic_frac(np.arange(10.0), np.array([])) == 1.0


class TestCheckStreamingTree:
    def test_requires_members(self):
        data = generate_agrawal("F2", 2_000, seed=1)
        result = StreamingTrainer(data.schema, CFG).fit(data)
        findings, gaps = check_streaming_tree(result, data)
        assert any(f.kind == "missing_members" for f in findings)

    def test_clean_run_no_findings(self):
        data = generate_agrawal("F2", 3_000, seed=2)
        result, findings, gaps = run_stream_differential(data, CFG)
        assert findings == []
        assert gaps.n_internal >= 1
        assert gaps.max_gap <= gaps.max_bound

    def test_tampered_split_is_caught(self):
        """Corrupt a recorded split's provenance; the harness must flag it."""
        data = generate_agrawal("F2", 3_000, seed=3)
        trainer = StreamingTrainer(data.schema, CFG, record_members=True)
        result = trainer.fit(data, chunk_size=512)
        assert result.split_meta
        node_id = min(result.split_meta)
        # Pretend the node absorbed the *last* rows of the stream instead
        # of the ones it recorded (the root's true members are the first
        # grace-period rows, so a prefix-based fake would be a no-op).
        n = len(result.members[node_id])
        result.members[node_id] = np.arange(data.n_records - n, data.n_records)
        findings, _ = check_streaming_tree(result, data)
        assert findings, "corrupted membership must produce findings"


class TestStreamBattery:
    def test_small_battery_clean(self):
        report = run_stream_battery(n_seeds=6, n_records=2_000, config=CFG)
        assert report.ok, [f.kind for f in report.findings]
        assert report.n_splits > 0
        assert len(report.rows) == 6
        orders = {row["order"] for row in report.rows}
        assert orders <= set(STREAM_ORDERS)
        for row in report.rows:
            assert row["max_gap"] <= row["max_bound"]

    @pytest.mark.slow
    def test_acceptance_battery_25_seeds(self):
        """The ISSUE acceptance gate: 25 seeds x functions x orders."""
        report = run_stream_battery(n_seeds=25, n_records=3_000, config=CFG)
        assert report.ok, [
            (f.kind, f.message) for f in report.findings if f.severity == "error"
        ]
        assert report.n_splits >= 25
        assert len(report.rows) == 25


class TestStreamMetamorphic:
    def test_all_checks_pass(self, f2_small):
        report = run_stream_metamorphic(f2_small, CFG, seed=0)
        assert report.ok, [f.kind for f in report.findings]
        assert {row["check"] for row in report.rows} == set(
            STREAM_METAMORPHIC_CHECKS
        )
        assert all(row["status"] == "ok" for row in report.rows)

    def test_check_subset_selection(self, f2_small):
        report = run_stream_metamorphic(
            f2_small, CFG, checks=("stream_scale_pow2",), seed=1
        )
        assert report.ok
        assert [row["check"] for row in report.rows] == ["stream_scale_pow2"]

    def test_unknown_check_rejected(self, f2_small):
        with pytest.raises(ValueError):
            run_stream_metamorphic(f2_small, CFG, checks=("nope",))
