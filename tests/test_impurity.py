"""Tests for pluggable impurity criteria."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.rainforest import RainForestBuilder
from repro.baselines.sliq import SliqBuilder
from repro.baselines.sprint import SprintBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.gini import exact_best_threshold_sorted, gini, gini_partition
from repro.core.impurity import (
    best_threshold_sorted,
    boundary_impurities,
    entropy_impurity,
    get_criterion,
    gini_impurity,
    partition_impurity,
)
from repro.eval.metrics import accuracy

from conftest import assert_tree_consistent

count_vectors = hnp.arrays(
    np.float64,
    st.integers(min_value=2, max_value=5),
    elements=st.integers(min_value=0, max_value=500).map(float),
)


class TestCriteria:
    def test_gini_delegates(self):
        counts = np.array([3.0, 7.0])
        assert gini_impurity(counts) == gini(counts)

    def test_entropy_values(self):
        assert entropy_impurity(np.array([8.0, 8.0])) == pytest.approx(1.0)
        assert entropy_impurity(np.array([10.0, 0.0])) == 0.0
        assert entropy_impurity(np.zeros(3)) == 0.0

    def test_entropy_bounds(self):
        # Uniform over c classes gives log2(c).
        assert entropy_impurity(np.full(4, 5.0)) == pytest.approx(2.0)

    def test_lookup(self):
        assert get_criterion("gini") is gini_impurity
        assert get_criterion("entropy") is entropy_impurity
        with pytest.raises(ValueError, match="unknown criterion"):
            get_criterion("twoing")

    @given(count_vectors, st.data())
    @settings(max_examples=60, deadline=None)
    def test_entropy_partition_never_exceeds_parent(self, total, data):
        left = np.array(
            [data.draw(st.integers(0, int(t))) for t in total], dtype=np.float64
        )
        right = total - left
        parent = entropy_impurity(total)
        assert partition_impurity(left, right, entropy_impurity) <= parent + 1e-9

    def test_partition_matches_gini_module(self):
        left = np.array([30.0, 10.0])
        right = np.array([5.0, 55.0])
        assert partition_impurity(left, right) == pytest.approx(
            gini_partition(left, right)
        )


class TestBestThreshold:
    def test_gini_matches_reference(self, rng):
        v = np.sort(rng.normal(size=300))
        lab = rng.integers(0, 2, 300)
        assert best_threshold_sorted(v, lab, 2) == exact_best_threshold_sorted(
            v, lab, 2
        )

    def test_entropy_can_differ_from_gini(self):
        # Asymmetric class sizes where the criteria pick different cuts.
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        lab = np.array([0, 0, 0, 1, 0, 1, 1, 1])
        tg, __ = best_threshold_sorted(v, lab, 2, gini_impurity)
        te, __ = best_threshold_sorted(v, lab, 2, entropy_impurity)
        # Both must be sensible cuts; equality is allowed but both valid.
        assert tg in v and te in v

    def test_boundary_impurities_shape(self):
        cum = np.array([[1.0, 0.0], [2.0, 1.0]])
        totals = np.array([3.0, 2.0])
        out = boundary_impurities(cum, totals, entropy_impurity)
        assert out.shape == (2,)


class TestBuildersWithEntropy:
    def test_exact_builders_support_entropy(self, two_blob, fast_config):
        cfg = fast_config.with_(criterion="entropy")
        for builder_cls in (SprintBuilder, SliqBuilder, RainForestBuilder):
            result = builder_cls(cfg).build(two_blob)
            assert_tree_consistent(result.tree, two_blob)
            assert accuracy(result.tree, two_blob) == 1.0

    def test_entropy_trees_agree_across_exact_builders(self, f2_small, fast_config):
        cfg = fast_config.with_(criterion="entropy", max_depth=5)
        trees = [
            builder_cls(cfg).build(f2_small).tree.render()
            for builder_cls in (SprintBuilder, SliqBuilder, RainForestBuilder)
        ]
        assert trees[0] == trees[1] == trees[2]

    def test_cmp_rejects_entropy(self, f2_small, fast_config):
        cfg = fast_config.with_(criterion="entropy")
        with pytest.raises(ValueError, match="only the gini criterion"):
            CMPSBuilder(cfg).build(f2_small)

    def test_config_validation(self, fast_config):
        with pytest.raises(ValueError, match="criterion"):
            fast_config.with_(criterion="bogus")
