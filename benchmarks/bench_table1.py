"""Table 1 — splits obtained by the exact algorithm vs CMP.

Regenerates the paper's Table 1: for each dataset and interval count, the
exact best root split vs CMP's discretized-and-resolved root split, with
the number of alive intervals.  Paper claims checked:

* at most 2 alive intervals everywhere, shrinking to 1 on large datasets;
* with enough intervals (>= 15 small / >= 50 large) CMP selects the same
  split attribute as the exact algorithm;
* when the attribute matches, the resolved gini matches the exact one.
"""

from __future__ import annotations

from conftest import scaled, write_result
from repro.eval import experiments


def _run_table1():
    return experiments.table1(seed=0, agrawal_records=scaled(100_000)[0])


def test_table1(benchmark):
    rows = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    text = write_result(
        "table1",
        rows,
        note="Table 1: exact vs CMP root splits ('-' = same as exact).",
    )
    print("\n" + text)

    # Shape: alive intervals bounded by 2 everywhere.
    assert all(0 <= r["alive"] <= 2 for r in rows)
    # Shape: the large synthetic functions match the exact algorithm's
    # attribute at 50 and 100 intervals, with at most two alive intervals.
    for r in rows:
        if str(r["dataset"]).startswith("Function"):
            assert r["cmp_attr"] == "-", r
            assert r["alive"] <= 2
    # Shape: with q >= 15 every dataset picks the right attribute; only
    # q = 10 may err (the paper's Table 1 shows the same failure mode on
    # Letter and Segment at 10 intervals).
    for r in rows:
        if r["intervals"] >= 15:
            assert r["cmp_attr"] == "-", r
    mismatches_q10 = sum(
        1 for r in rows if r["intervals"] == 10 and r["cmp_attr"] != "-"
    )
    assert mismatches_q10 <= 2
    benchmark.extra_info["rows"] = len(rows)
