"""Figure 15 — scalability of the CMP family on Function 7.

Function 7 "generates a much larger decision tree and thus the
construction takes much longer than for Function 2" — checked below
alongside the near-linear growth of Figure 14.
"""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments

SIZES = scaled(20_000, 50_000, 100_000)


def _run(bench_config):
    return experiments.scalability("F7", SIZES, bench_config, seed=0)


def test_fig15_scalability_f7(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = experiments.records_as_rows(records)
    print("\n" + write_result("fig15_scalability_f7", rows, note="Figure 15 (Function 7)."))

    grouped = by_builder(records)
    for name, series in grouped.items():
        times = [series[n].simulated_ms for n in SIZES]
        assert times[0] < times[1] < times[2], name
    for n in SIZES:
        assert grouped["CMP-B"][n].simulated_ms <= grouped["CMP-S"][n].simulated_ms * 1.02

    # Function 7's tree is bigger than Function 2's at the same size.
    f2 = experiments.scalability("F2", (SIZES[0],), experiments.default_config(), seed=0)
    f2_nodes = next(r.nodes for r in f2 if r.builder == "CMP-S")
    f7_nodes = grouped["CMP-S"][SIZES[0]].nodes
    assert f7_nodes > f2_nodes
