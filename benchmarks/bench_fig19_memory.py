"""Figure 19 — memory-space usage comparison.

Paper setup: RF-Hybrid's fixed AVC buffer of 2.5M entries costs
``2.5M * sizeof(int) * 2 = 20 MB``; "the memory space requirement for CMP,
which consists of the alive interval buffer, the rid buffer and the
histogram matrix, is considerably smaller"; SPRINT sits in between (its
rid hash table is proportional to the node being partitioned).
"""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments

SIZES = scaled(20_000, 50_000, 100_000)


def _run(bench_config):
    return experiments.memory_usage("F2", SIZES, bench_config, seed=0)


def test_fig19_memory(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = [
        {
            "builder": r.builder,
            "n": r.n_records,
            "peak_mem_MB": round(r.peak_memory_bytes / 1e6, 3),
        }
        for r in records
    ]
    print("\n" + write_result("fig19_memory", rows, note="Figure 19 (peak memory)."))

    grouped = by_builder(records)
    for n in SIZES:
        rf = grouped["RainForest"][n].peak_memory_bytes
        cmp_mem = grouped["CMP"][n].peak_memory_bytes
        sprint = grouped["SPRINT"][n].peak_memory_bytes
        # RF-Hybrid's flat 20 MB AVC buffer dominates everything.
        assert rf == 2_500_000 * 4 * 2
        assert rf > 3 * cmp_mem
        assert rf > sprint
    # SPRINT's hash table grows linearly with the training set.
    sprint_series = [grouped["SPRINT"][n].peak_memory_bytes for n in SIZES]
    assert sprint_series[0] < sprint_series[1] < sprint_series[2]
