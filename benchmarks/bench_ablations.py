"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and measures its effect:

* ``max_alive`` (0/1/2): alive-interval buffering is what lets CMP defer
  exact splits; with 0 every split degrades to a boundary split.
* ``clouds_mode`` ss vs sse: what CLOUDS pays for exactness — the baseline
  CMP-S's deferral removes.
* ``x_tie_margin``: near-tie preference for the predicted X axis (enables
  two-level growth on correlated attributes).
* ``linear_trigger_gini``: the §2.3 heuristic gating linear-split search.
"""

from __future__ import annotations

from conftest import scaled, write_result
from repro.baselines.clouds import CloudsBuilder
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal, generate_function_f
from repro.eval import experiments
from repro.eval.harness import run_builder

N = scaled(50_000)[0]


def _rows_for(builder_factory, variants, dataset):
    rows = []
    for label, cfg in variants:
        record, result = run_builder(builder_factory(cfg), dataset)
        row = record.as_dict()
        row["variant"] = label
        rows.append(row)
    return rows


def test_ablation_max_alive(benchmark, bench_config):
    dataset = generate_agrawal("F2", N, seed=0)
    variants = [
        (f"max_alive={k}", bench_config.with_(max_alive=k)) for k in (0, 1, 2)
    ]
    rows = benchmark.pedantic(
        _rows_for, args=(CMPSBuilder, variants, dataset), rounds=1, iterations=1
    )
    print("\n" + write_result("ablation_max_alive", rows))
    accs = {r["variant"]: r["train_acc"] for r in rows}
    # Alive-interval buffering must not hurt accuracy; disabling it
    # (boundary-only splits) must not help.
    assert accs["max_alive=2"] >= accs["max_alive=0"] - 0.01


def test_ablation_clouds_mode(benchmark, bench_config):
    dataset = generate_agrawal("F2", N, seed=0)
    variants = [
        ("clouds-ss", bench_config.with_(clouds_mode="ss")),
        ("clouds-sse", bench_config.with_(clouds_mode="sse")),
    ]
    rows = benchmark.pedantic(
        _rows_for, args=(CloudsBuilder, variants, dataset), rounds=1, iterations=1
    )
    print("\n" + write_result("ablation_clouds_mode", rows))
    scans = {r["variant"]: r["scans"] for r in rows}
    assert scans["clouds-ss"] < scans["clouds-sse"]


def test_ablation_x_tie_margin(benchmark, bench_config):
    dataset = generate_agrawal("F2", N, seed=0)
    variants = [
        (f"margin={m}", bench_config.with_(x_tie_margin=m)) for m in (0.0, 0.02, 0.05)
    ]
    rows = benchmark.pedantic(
        _rows_for, args=(CMPBBuilder, variants, dataset), rounds=1, iterations=1
    )
    print("\n" + write_result("ablation_x_tie_margin", rows))
    # The margin trades a bounded accuracy epsilon for prediction hits.
    pred = {r["variant"]: r.get("pred_acc", 0.0) for r in rows}
    acc = {r["variant"]: r["train_acc"] for r in rows}
    assert pred["margin=0.05"] >= pred["margin=0.0"] - 0.02
    assert acc["margin=0.05"] >= acc["margin=0.0"] - 0.02


def test_ablation_linear_trigger(benchmark, bench_config):
    dataset = generate_function_f(N, seed=0)
    variants = [
        ("trigger=off(1.0)", bench_config.with_(linear_trigger_gini=1.0)),
        ("trigger=0.05", bench_config.with_(linear_trigger_gini=0.05)),
    ]
    rows = benchmark.pedantic(
        _rows_for, args=(CMPBuilder, variants, dataset), rounds=1, iterations=1
    )
    print("\n" + write_result("ablation_linear_trigger", rows))
    by = {r["variant"]: r for r in rows}
    # Disabling linear splits on Function f inflates the tree.
    assert by["trigger=off(1.0)"].get("linear", 0) == 0
    assert by["trigger=0.05"].get("linear", 0) >= 1
    assert by["trigger=0.05"]["nodes"] < by["trigger=off(1.0)"]["nodes"]
