"""Benchmark: tracing overhead on the build path.

Standalone script (not a pytest benchmark): builds each CMP-family
classifier with tracing disabled (``NULL_TRACER``) and enabled (a real
:class:`~repro.obs.trace.Tracer` plus a populated
:class:`~repro.obs.metrics.MetricsRegistry`), verifies the trees are
bit-identical, and emits ``BENCH_obs.json`` with best-of-``--repeats``
wall-clock timings and the measured overhead percentage.  CI runs it as
a smoke step and uploads the JSON plus a sample trace artifact::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --records 20000 --repeats 3 --out BENCH_obs.json \
        --trace-out trace_sample.jsonl

The acceptance bar is ``--max-overhead`` percent (default 5.0) on the
best-of-repeats wall clock: span recording is a handful of dict appends
per level/scan, so it must stay in the noise next to the NumPy-heavy
split search.  Bit-identity is the hard guarantee: tracing observes the
build, it never steers it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal
from repro.obs import MetricsRegistry, Tracer, record_build_stats

BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


def _interleaved_best(builder_cls, dataset, config, repeats):
    """Best wall-clock for tracing off and on, measured in alternation.

    Alternating off/on builds inside one loop keeps both measurements
    under the same cache/thermal conditions, so machine drift between
    two separate timing loops does not masquerade as tracing overhead.
    Returns ``(off_s, off_result, on_s, on_result, on_tracer)``.
    """
    off_s = on_s = float("inf")
    off_result = on_result = on_tracer = None
    for _ in range(repeats):
        result = builder_cls(config).build(dataset)
        if result.stats.wall_seconds < off_s:
            off_s, off_result = result.stats.wall_seconds, result
        tracer = Tracer()
        result = builder_cls(config, tracer=tracer).build(dataset)
        if result.stats.wall_seconds < on_s:
            on_s, on_result, on_tracer = result.stats.wall_seconds, result, tracer
    return off_s, off_result, on_s, on_result, on_tracer


def run(
    records: int,
    repeats: int,
    function: str,
    seed: int,
    max_overhead_pct: float,
    trace_out: str | None,
) -> dict[str, object]:
    dataset = generate_agrawal(function, records, seed=seed)
    config = BuilderConfig(max_depth=8)
    registry = MetricsRegistry()
    report: dict[str, object] = {
        "benchmark": "obs_overhead",
        "function": function,
        "records": records,
        "repeats": repeats,
        "seed": seed,
        "max_overhead_pct": max_overhead_pct,
        "python": platform.python_version(),
        "builders": {},
    }
    ok = True
    for builder_cls in BUILDERS:
        off_s, off_result, on_s, on_result, tracer = _interleaved_best(
            builder_cls, dataset, config, repeats
        )
        record_build_stats(
            registry, on_result.stats, {"builder": builder_cls.name}
        )
        identical = tree_to_json(off_result.tree) == tree_to_json(on_result.tree)
        overhead_pct = (on_s / max(off_s, 1e-9) - 1.0) * 100.0
        within = overhead_pct <= max_overhead_pct
        ok &= identical and within
        report["builders"][builder_cls.name] = {
            "bit_identical": identical,
            "off_wall_seconds": round(off_s, 4),
            "on_wall_seconds": round(on_s, 4),
            "overhead_pct": round(overhead_pct, 2),
            "within_budget": within,
            "spans": len(tracer.spans()),
            "scans": on_result.stats.io.scans,
        }
        print(
            f"{builder_cls.name:6s} identical={identical} "
            f"off={off_s:.3f}s on={on_s:.3f}s "
            f"overhead={overhead_pct:+.2f}% "
            f"({len(tracer.spans())} spans)"
        )
        if trace_out and builder_cls is BUILDERS[-1]:
            n = tracer.write_jsonl(trace_out)
            print(f"wrote {n} spans to {trace_out}")
    report["all_ok"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        metavar="PCT",
        help="fail if tracing costs more than this percent of wall clock",
    )
    parser.add_argument("--out", default="BENCH_obs.json", metavar="PATH")
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the full CMP build trace here as JSONL",
    )
    args = parser.parse_args(argv)

    report = run(
        args.records,
        args.repeats,
        args.function,
        args.seed,
        args.max_overhead,
        args.trace_out,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["all_ok"]:
        print(
            "ERROR: tracing changed the tree or exceeded the overhead budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
