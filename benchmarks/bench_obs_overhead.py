"""Benchmark: tracing overhead on the build path.

Standalone script (not a pytest benchmark): builds each CMP-family
classifier with tracing disabled (``NULL_TRACER``) and enabled (a real
:class:`~repro.obs.trace.Tracer` plus a populated
:class:`~repro.obs.metrics.MetricsRegistry`), verifies the trees are
bit-identical, and emits ``BENCH_obs.json`` with best-of-``--repeats``
wall-clock timings and the measured overhead percentage.  CI runs it as
a smoke step and uploads the JSON plus a sample trace artifact::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --records 20000 --repeats 3 --out BENCH_obs.json \
        --trace-out trace_sample.jsonl

The acceptance bar is ``--max-overhead`` percent (default 5.0) on the
median of per-repeat paired on/off wall-clock ratios (best-of-repeats
wall clocks are still reported): span recording is a handful of dict appends
per level/scan, so it must stay in the noise next to the NumPy-heavy
split search.  Bit-identity is the hard guarantee: tracing observes the
build, it never steers it.

Beyond the serial sweep over every builder, CMP-S is also measured with
``--workers`` parallel scan workers on each scan backend (``thread``
always, ``process`` where fork is available) — the process backend
additionally exercises worker-span shipping and grafting, so its
overhead number covers the cross-process continuity machinery too.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from statistics import median

from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal
from repro.core.parallel import process_backend_available
from repro.obs import MetricsRegistry, Tracer, record_build_stats

BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


def _measure(builder_cls, dataset, config, repeats, max_overhead_pct):
    """One off/on comparison; returns (entry dict, tracer, ok)."""
    off_s, off_result, on_s, on_result, tracer, ratios = _interleaved_best(
        builder_cls, dataset, config, repeats
    )
    identical = tree_to_json(off_result.tree) == tree_to_json(on_result.tree)
    overhead_pct = (median(ratios) - 1.0) * 100.0
    within = overhead_pct <= max_overhead_pct
    entry = {
        "bit_identical": identical,
        "off_wall_seconds": round(off_s, 4),
        "on_wall_seconds": round(on_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "within_budget": within,
        "spans": len(tracer.spans()),
        "scans": on_result.stats.io.scans,
    }
    return entry, on_result, tracer, identical and within


def _interleaved_best(builder_cls, dataset, config, repeats):
    """Wall-clock for tracing off and on, measured in alternation.

    Alternating off/on builds inside one loop keeps both measurements
    under the same cache/thermal conditions, so machine drift between
    two separate timing loops does not masquerade as tracing overhead.
    Returns ``(off_s, off_result, on_s, on_result, on_tracer, ratios)``
    where ``ratios`` holds one paired on/off wall-clock ratio per
    repeat — each pair ran back-to-back (with the order flipped every
    other repeat, so a machine that slows mid-pair biases half the
    pairs each way instead of all of them against tracing), and the
    median of the pairs (taken by the caller) shrugs off the occasional
    repeat that caught a scheduler hiccup.
    """
    off_s = on_s = float("inf")
    off_result = on_result = on_tracer = None
    ratios = []

    def build_off():
        nonlocal off_s, off_result
        result = builder_cls(config).build(dataset)
        if result.stats.wall_seconds < off_s:
            off_s, off_result = result.stats.wall_seconds, result
        return result.stats.wall_seconds

    def build_on():
        nonlocal on_s, on_result, on_tracer
        tracer = Tracer()
        result = builder_cls(config, tracer=tracer).build(dataset)
        if result.stats.wall_seconds < on_s:
            on_s, on_result, on_tracer = result.stats.wall_seconds, result, tracer
        return result.stats.wall_seconds

    for i in range(repeats):
        if i % 2 == 0:
            pair_off, pair_on = build_off(), build_on()
        else:
            pair_on, pair_off = build_on(), build_off()
        ratios.append(pair_on / max(pair_off, 1e-9))
    return off_s, off_result, on_s, on_result, on_tracer, ratios


def run(
    records: int,
    repeats: int,
    function: str,
    seed: int,
    max_overhead_pct: float,
    trace_out: str | None,
    workers: int,
) -> dict[str, object]:
    dataset = generate_agrawal(function, records, seed=seed)
    config = BuilderConfig(max_depth=8)
    registry = MetricsRegistry()
    report: dict[str, object] = {
        "benchmark": "obs_overhead",
        "function": function,
        "records": records,
        "repeats": repeats,
        "seed": seed,
        "workers": workers,
        "max_overhead_pct": max_overhead_pct,
        "python": platform.python_version(),
        "builders": {},
        "backends": {},
    }
    ok = True
    for builder_cls in BUILDERS:
        entry, on_result, tracer, entry_ok = _measure(
            builder_cls, dataset, config, repeats, max_overhead_pct
        )
        ok &= entry_ok
        record_build_stats(
            registry, on_result.stats, {"builder": builder_cls.name}
        )
        report["builders"][builder_cls.name] = entry
        print(
            f"{builder_cls.name:6s} identical={entry['bit_identical']} "
            f"off={entry['off_wall_seconds']:.3f}s "
            f"on={entry['on_wall_seconds']:.3f}s "
            f"overhead={entry['overhead_pct']:+.2f}% "
            f"({entry['spans']} spans)"
        )
        if trace_out and builder_cls is BUILDERS[-1]:
            n = tracer.write_jsonl(trace_out)
            print(f"wrote {n} spans to {trace_out}")
    backends = ["thread"]
    if process_backend_available():
        backends.append("process")
    for backend in backends:
        cfg = config.with_(scan_workers=workers, scan_backend=backend)
        entry, _, _, entry_ok = _measure(
            CMPSBuilder, dataset, cfg, repeats, max_overhead_pct
        )
        ok &= entry_ok
        report["backends"][backend] = entry
        print(
            f"CMP-S/{backend:7s} (workers={workers}) "
            f"identical={entry['bit_identical']} "
            f"off={entry['off_wall_seconds']:.3f}s "
            f"on={entry['on_wall_seconds']:.3f}s "
            f"overhead={entry['overhead_pct']:+.2f}% "
            f"({entry['spans']} spans)"
        )
    report["all_ok"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="scan workers for the per-backend CMP-S measurements",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        metavar="PCT",
        help="fail if tracing costs more than this percent of wall clock",
    )
    parser.add_argument("--out", default="BENCH_obs.json", metavar="PATH")
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the full CMP build trace here as JSONL",
    )
    args = parser.parse_args(argv)

    report = run(
        args.records,
        args.repeats,
        args.function,
        args.seed,
        args.max_overhead,
        args.trace_out,
        args.workers,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["all_ok"]:
        print(
            "ERROR: tracing changed the tree or exceeded the overhead budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
