"""Figure 18 — comparison on the linearly-correlated Function f.

The paper: "When the underlying dataset is linearly correlated and this
correlation is detected by CMP, CMP shows significant performance
advantage over RainForest and other classifiers" — its tree is ~2 levels
(Figure 13) where univariate trees sprawl (Figure 9).
"""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments

SIZES = scaled(20_000, 50_000)


def _run(bench_config):
    return experiments.comparison_f(SIZES, bench_config, seed=0)


def test_fig18_function_f(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = experiments.records_as_rows(records)
    print("\n" + write_result("fig18_function_f", rows, note="Figure 18 (Function f)."))

    grouped = by_builder(records)
    for n in SIZES:
        cmp = grouped["CMP"][n]
        # CMP discovers the linear structure...
        assert cmp.linear_splits >= 1
        # ...and builds a drastically smaller tree than univariate trees.
        assert cmp.nodes < 0.75 * grouped["SPRINT"][n].nodes
        assert cmp.nodes < 0.75 * grouped["RainForest"][n].nodes
        # Faster than every univariate algorithm, without losing accuracy.
        for other in ("SPRINT", "CLOUDS"):
            assert cmp.simulated_ms < grouped[other][n].simulated_ms, other
        assert cmp.train_accuracy > grouped["SPRINT"][n].train_accuracy - 0.02
