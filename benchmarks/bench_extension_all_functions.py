"""Extension bench — accuracy parity across all ten Agrawal functions.

The paper evaluates on Functions 2 and 7; this bench sweeps the full
generator ([5], the source the paper draws its workloads from) and checks
the §4 claim — "for large datasets, [CMP] is as accurate as SPRINT" —
holds across the entire family, including the functions with categorical
predicates (F3/F4 use elevel, F10 uses hvalue/hyears).
"""

from __future__ import annotations

from conftest import scaled, write_result
from repro.core.cmp_full import CMPBuilder
from repro.baselines.rainforest import RainForestBuilder
from repro.data.synthetic import FUNCTIONS, generate_agrawal
from repro.eval.harness import run_builder

N = scaled(20_000)[0]
FUNCTION_NAMES = [f"F{i}" for i in range(1, 11)]


def _run(bench_config):
    rows = []
    for fn in FUNCTION_NAMES:
        dataset = generate_agrawal(fn, N, seed=0)
        cmp_rec, __ = run_builder(CMPBuilder(bench_config), dataset)
        exact_rec, __ = run_builder(RainForestBuilder(bench_config), dataset)
        rows.append(
            {
                "function": fn,
                "cmp_acc": cmp_rec.train_accuracy,
                "exact_acc": exact_rec.train_accuracy,
                "gap": round(exact_rec.train_accuracy - cmp_rec.train_accuracy, 4),
                "cmp_scans": cmp_rec.scans,
                "exact_scans": exact_rec.scans,
                "cmp_nodes": cmp_rec.nodes,
                "exact_nodes": exact_rec.nodes,
                "linear": cmp_rec.linear_splits,
            }
        )
    return rows


def test_all_functions_accuracy_parity(benchmark, bench_config):
    rows = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    print("\n" + write_result("extension_all_functions", rows))
    for row in rows:
        assert row["gap"] < 0.04, row
