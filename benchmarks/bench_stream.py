"""Benchmark: one-pass streaming training vs the two-pass batch builder.

Standalone script (not a pytest benchmark), the perf gate for the
streaming subsystem.  Three claims are measured and asserted:

1. **Passes** — the :class:`~repro.stream.StreamingTrainer` sees every
   record exactly once, while the batch CMP-S builder rescans the table
   once per level (asserted: batch scans > 1, streaming records
   consumed == dataset size).
2. **Memory** — open-leaf sketch bytes are ledgered; with
   ``--memory-budget`` set, the post-spill high-water mark must stay
   under the budget (asserted when the flag is given).
3. **Accuracy** — the one-pass tree's held-out accuracy must stay
   within ``--accuracy-gap`` of the batch tree's (asserted always;
   the ε-derived per-split bound is checked separately by the
   ``repro.verify.stream`` battery in the test suite).

CI runs::

    PYTHONPATH=src python benchmarks/bench_stream.py \
        --records 600000 --accuracy-gap 0.12 --out BENCH_stream.json

Wall clocks are reported for both builds but never gated — machine load
makes them unreliable in shared CI; the pass/memory/accuracy claims are
load-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import BuilderConfig
from repro.core.cmp_s import CMPSBuilder
from repro.data.synthetic import generate_agrawal
from repro.stream import StreamingTrainer


def run(args) -> tuple[dict[str, object], bool]:
    dataset = generate_agrawal(args.function, args.records, seed=args.seed)
    holdout = generate_agrawal(
        args.function, args.holdout_records, seed=args.seed + 1
    )
    config = BuilderConfig(
        n_intervals=args.intervals,
        max_depth=args.depth,
        min_records=20,
        seed=args.seed,
    )
    report: dict[str, object] = {
        "benchmark": "stream",
        "function": args.function,
        "records": args.records,
        "holdout_records": args.holdout_records,
        "intervals": args.intervals,
        "depth": args.depth,
        "eps": args.eps,
        "chunk": args.chunk,
        "memory_budget_bytes": args.memory_budget,
        "seed": args.seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    ok = True

    # --- One-pass streaming build. ----------------------------------------
    trainer = StreamingTrainer(
        dataset.schema,
        config,
        eps=args.eps,
        memory_budget_bytes=args.memory_budget,
    )
    start = time.perf_counter()
    streamed = trainer.fit(dataset, chunk_size=args.chunk)
    stream_wall = time.perf_counter() - start
    stream_acc = float(np.mean(streamed.tree.predict(holdout.X) == holdout.y))
    one_pass = streamed.n_records == dataset.n_records
    ok &= one_pass
    report["streaming"] = {
        "wall_seconds": round(stream_wall, 3),
        "records_consumed": streamed.n_records,
        "one_pass": one_pass,
        "holdout_accuracy": round(stream_acc, 4),
        "leaves": streamed.tree.n_leaves,
        "sketch_bytes_peak": streamed.sketch_bytes_peak,
        "ledger_peak_bytes": streamed.stats.memory.peak,
        "ledger_balanced": streamed.stats.memory.current == 0,
        "spilled_nodes": len(streamed.spilled_nodes),
        "declined_nodes": len(streamed.declined_nodes),
        "records_per_second": int(args.records / max(stream_wall, 1e-9)),
    }
    ok &= streamed.stats.memory.current == 0
    print(
        f"streaming: {stream_wall:.2f}s acc={stream_acc:.4f} "
        f"sketch_peak={streamed.sketch_bytes_peak / 1e6:.2f}MB "
        f"spills={len(streamed.spilled_nodes)} "
        f"declines={len(streamed.declined_nodes)}"
    )
    if args.memory_budget:
        under = streamed.sketch_bytes_peak <= args.memory_budget
        ok &= under
        if not under:
            print(
                f"FAIL: sketch peak {streamed.sketch_bytes_peak} exceeds "
                f"budget {args.memory_budget}",
                file=sys.stderr,
            )

    # --- Two-pass (per-level rescan) batch build. --------------------------
    start = time.perf_counter()
    batch = CMPSBuilder(config).build(dataset)
    batch_wall = time.perf_counter() - start
    batch_acc = float(np.mean(batch.tree.predict(holdout.X) == holdout.y))
    multi_scan = batch.stats.io.scans > 1
    ok &= multi_scan
    report["batch"] = {
        "wall_seconds": round(batch_wall, 3),
        "holdout_accuracy": round(batch_acc, 4),
        "scans": batch.stats.io.scans,
        "multi_scan": multi_scan,
        "leaves": batch.tree.n_leaves,
        "ledger_peak_bytes": batch.stats.memory.peak,
        "records_per_second": int(args.records / max(batch_wall, 1e-9)),
    }
    print(
        f"batch: {batch_wall:.2f}s acc={batch_acc:.4f} "
        f"scans={batch.stats.io.scans}"
    )

    # --- The trade-off, quantified. ----------------------------------------
    gap = batch_acc - stream_acc
    within = gap <= args.accuracy_gap
    ok &= within
    # Deliberately direction-neutral names: the bench-history gate infers
    # polarity from substrings ("accuracy" must not fall, "wall" must not
    # rise), and neither applies to a signed gap or a ratio of two walls.
    report["gap_batch_minus_stream"] = round(gap, 4)
    report["gap_limit"] = args.accuracy_gap
    report["batch_over_stream_ratio"] = round(
        batch_wall / max(stream_wall, 1e-9), 3
    )
    print(
        f"gap: batch-streaming accuracy {gap:+.4f} "
        f"(limit {args.accuracy_gap}) wall x{report['batch_over_stream_ratio']}"
    )
    if not within:
        print(
            f"FAIL: accuracy gap {gap:.4f} exceeds {args.accuracy_gap}",
            file=sys.stderr,
        )

    report["ok"] = ok
    return report, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=600_000)
    parser.add_argument("--holdout-records", type=int, default=100_000)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--intervals", type=int, default=32)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--eps", type=float, default=0.02)
    parser.add_argument("--chunk", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="streaming sketch budget; 0 = unbounded (no spill gate)",
    )
    parser.add_argument(
        "--accuracy-gap",
        type=float,
        default=0.12,
        metavar="X",
        help="fail if batch beats streaming held-out accuracy by more",
    )
    parser.add_argument("--out", default="BENCH_stream.json", metavar="PATH")
    args = parser.parse_args(argv)

    report, ok = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print("bench_stream: FAILED (see report)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
