"""§2.2 — predictSplit accuracy on Function 2.

The paper reports "about 80% of the predictions are accurate" for the
9-attribute Function 2 dataset.  Our measured rate is lower (the
correlated salary/commission pair and deep noise levels produce near-tie
mispredictions; see EXPERIMENTS.md) but far above the ~17% baseline of
picking one of the six continuous attributes at random.
"""

from __future__ import annotations

from conftest import scaled, write_result
from repro.eval import experiments


def _run(bench_config):
    return experiments.prediction_accuracy(
        scaled(100_000)[0], bench_config, seed=0
    )


def test_prediction_accuracy(benchmark, bench_config):
    out = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = [{k: round(v, 4) for k, v in out.items()}]
    print("\n" + write_result("prediction_accuracy", rows, note="predictSplit accuracy (paper: ~0.8)."))

    assert out["predictions_made"] > 20
    assert out["accuracy"] > 0.35
    benchmark.extra_info.update(rows[0])
