"""Figure 17 — CMP vs SPRINT, RainForest, CLOUDS on Function 7."""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments

SIZES = scaled(20_000, 50_000, 100_000)


def _run(bench_config):
    return experiments.comparison("F7", SIZES, bench_config, seed=0)


def test_fig17_comparison_f7(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = experiments.records_as_rows(records)
    print("\n" + write_result("fig17_comparison_f7", rows, note="Figure 17 (Function 7)."))

    grouped = by_builder(records)
    ratios = []
    for n in SIZES:
        cmp_ms = grouped["CMP"][n].simulated_ms
        ratios.append(grouped["SPRINT"][n].simulated_ms / cmp_ms)
        assert grouped["SPRINT"][n].simulated_ms > 1.5 * cmp_ms
        assert grouped["CLOUDS"][n].simulated_ms > cmp_ms
        assert grouped["RainForest"][n].simulated_ms < cmp_ms * 1.25
    # The SPRINT/CMP gap widens with the training set (paper: ~5x at 2.5M).
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.0
    # Accuracy parity across algorithms (§4: "as accurate as SPRINT").
    for n in SIZES:
        exact_acc = grouped["SPRINT"][n].train_accuracy
        assert grouped["CMP"][n].train_accuracy > exact_acc - 0.035
