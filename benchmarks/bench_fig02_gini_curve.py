"""Figure 2 — gini index estimation and alive intervals.

Regenerates the data behind the paper's illustration: boundary ginis, the
per-interval hill-climb estimates, and the selected alive intervals for
one attribute of the Function 2 root.
"""

from __future__ import annotations

import numpy as np

from conftest import scaled, write_result
from repro.eval import experiments


def _run():
    return experiments.fig2_gini_curve(
        n_records=scaled(50_000)[0], n_intervals=40, seed=0
    )


def test_fig2_gini_curve(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {
            "boundary": k,
            "edge_value": round(float(out["edges"][k]), 1),
            "gini": round(float(out["boundary_gini"][k]), 6),
        }
        for k in range(len(out["boundary_gini"]))
    ]
    text = write_result(
        "fig02_gini_curve",
        rows,
        note=(
            f"Figure 2 data: gini_min={out['gini_min'][0]:.6f}, "
            f"alive intervals={out['alive_intervals'].tolist()}"
        ),
    )
    print("\n" + text[:1200])

    # Shape: the estimates lower-bound the curve around the optimum and at
    # most two intervals stay alive.
    assert len(out["alive_intervals"]) <= 2
    est = out["estimates"]
    gini_min = out["gini_min"][0]
    for i in out["alive_intervals"]:
        assert est[i] < gini_min
    # The curve is a genuine curve: it varies.
    finite = out["boundary_gini"][np.isfinite(out["boundary_gini"])]
    assert finite.max() - finite.min() > 0.01
