"""Benchmark: compiled batch inference vs the object walker.

Standalone script (not a pytest benchmark): builds a randomized tree
mixing all three split kinds, verifies the compiled engine predicts
bit-identically to the object walker, measures batch throughput for
``predict`` and ``predict_proba`` on both paths (plus the pure-numpy
compiled fallback), and emits ``BENCH_predict.json``.  CI runs it as a
smoke step and uploads the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_predict.py \
        --records 1000000 --depth 10 --out BENCH_predict.json

Interpreting the numbers: the object walker is already set-vectorized
(one numpy comparison per tree node over the records reaching it), so
the headline speedup is the native C routing kernel's — row-at-a-time
descent with the record's row in cache.  The numpy compiled path
(``CMP_NO_NATIVE=1``, also reported here as ``numpy_route``) wins by a
smaller factor: it gathers single columns instead of the walker's
full-row copies.  Bit-identity against the walker is asserted for both.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.native import native_available
from repro.eval.treegen import random_batch, random_tree


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(records: int, depth: int, seed: int, repeats: int) -> dict[str, object]:
    tree = random_tree(depth=depth, seed=seed)
    X = random_batch(tree.schema, records, seed=seed + 1)
    compiled = tree.compiled()
    compiled.predict(X[:1000])  # warm: native build, caches

    walked = tree.walk_predict(X)
    predicted = compiled.predict(X)
    identical = bool(np.array_equal(walked, predicted)) and bool(
        np.array_equal(tree.walk_predict_proba(X), compiled.predict_proba(X))
    )

    walk_s = _best(lambda: tree.walk_predict(X), repeats)
    compiled_s = _best(lambda: compiled.predict(X), repeats)
    numpy_s = _best(lambda: compiled._route_numpy(np.ascontiguousarray(X)), repeats)
    walk_proba_s = _best(lambda: tree.walk_predict_proba(X), repeats)
    proba_s = _best(lambda: compiled.predict_proba(X), repeats)

    report: dict[str, object] = {
        "benchmark": "predict",
        "records": records,
        "depth": depth,
        "nodes": tree.n_nodes,
        "seed": seed,
        "python": platform.python_version(),
        "native_kernel": native_available(),
        "bit_identical": identical,
        "walker": {
            "predict_s": round(walk_s, 4),
            "predict_proba_s": round(walk_proba_s, 4),
            "records_per_s": round(records / walk_s, 1),
        },
        "compiled": {
            "predict_s": round(compiled_s, 4),
            "predict_proba_s": round(proba_s, 4),
            "records_per_s": round(records / compiled_s, 1),
        },
        "numpy_route": {
            "route_s": round(numpy_s, 4),
            "records_per_s": round(records / numpy_s, 1),
        },
        "speedup": round(walk_s / max(compiled_s, 1e-9), 2),
        "speedup_numpy_route": round(walk_s / max(numpy_s, 1e-9), 2),
        "speedup_proba": round(walk_proba_s / max(proba_s, 1e-9), 2),
    }
    print(
        f"depth={depth} nodes={tree.n_nodes} records={records} "
        f"native={report['native_kernel']} identical={identical}"
    )
    print(
        f"predict: walker={walk_s:.3f}s compiled={compiled_s:.4f}s "
        f"(x{report['speedup']:.1f}; numpy route x{report['speedup_numpy_route']:.1f})"
    )
    print(
        f"predict_proba: walker={walk_proba_s:.3f}s compiled={proba_s:.4f}s "
        f"(x{report['speedup_proba']:.1f})"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=1_000_000)
    parser.add_argument("--depth", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_predict.json", metavar="PATH")
    args = parser.parse_args(argv)

    report = run(args.records, args.depth, args.seed, args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["bit_identical"]:
        print("ERROR: compiled predictions diverged from the walker", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
