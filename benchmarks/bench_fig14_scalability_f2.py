"""Figure 14 — scalability of the CMP family on Function 2.

The paper sweeps 200k-2.5M records and reports running time for CMP-S,
CMP-B and CMP; time grows nearly linearly and CMP-B beats CMP-S (the
paper: "almost 40% faster"; our measured gap is smaller — see
EXPERIMENTS.md).  We sweep a 10x-scaled-down range and report the
deterministic simulated time.
"""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments


SIZES = scaled(20_000, 50_000, 100_000)


def _run(bench_config):
    return experiments.scalability("F2", SIZES, bench_config, seed=0)


def test_fig14_scalability_f2(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = experiments.records_as_rows(records)
    print("\n" + write_result("fig14_scalability_f2", rows, note="Figure 14 (Function 2)."))

    grouped = by_builder(records)
    for name, series in grouped.items():
        times = [series[n].simulated_ms for n in SIZES]
        # Near-linear growth: time increases with n and the largest run is
        # at most ~1.6x a linear extrapolation of the smallest.
        assert times[0] < times[1] < times[2], name
        linear_extrapolation = times[0] * SIZES[2] / SIZES[0]
        assert times[2] < 1.6 * linear_extrapolation, name
    # CMP-B at or below CMP-S; CMP (linear machinery on) close to CMP-B.
    for n in SIZES:
        assert grouped["CMP-B"][n].simulated_ms <= grouped["CMP-S"][n].simulated_ms * 1.02
        assert grouped["CMP"][n].simulated_ms <= grouped["CMP-B"][n].simulated_ms * 1.25
