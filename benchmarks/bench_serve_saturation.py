"""Benchmark: serving under sustained overload stays bounded and honest.

Standalone script (not a pytest benchmark): registers a deterministically
slow model (:class:`~repro.serve.faults.SlowModel` — the sleep releases
the GIL, so service time is the delay and capacity is
``admission depth / delay``), then drives it with more closed-loop
clients than admission permits.  The hardened front-end must:

* **shed, not queue** — excess arrivals are rejected ``Overloaded`` in
  O(1), so the shed count is positive and large;
* **keep admitted latency flat** — the p99 of *admitted* requests stays
  within ``--p99-factor`` (default 3x) of the uncontended p99, because
  no admitted request ever waits behind an unbounded backlog;
* **stay bit-identical** — admitted responses equal direct
  ``CompiledTree.predict`` output, overload or not.

Emits ``BENCH_serve.json`` and exits nonzero when any bound fails, so
CI turns an unbounded p99 or a zero shed-rate into a red build::

    PYTHONPATH=src python benchmarks/bench_serve_saturation.py \
        --clients 8 --queue-depth 2 --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.eval.treegen import random_batch, random_tree
from repro.obs import SLODefinition, SLOMonitor
from repro.serve import Overloaded, ServingEngine, SlowModel


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q)) if samples else 0.0


def _uncontended(engine, key, X, calls: int) -> list[float]:
    latencies = []
    for _ in range(calls):
        start = time.perf_counter()
        engine.predict(key, X)
        latencies.append(time.perf_counter() - start)
    return latencies


def _saturate(
    engine,
    key,
    X,
    clients: int,
    requests_per_client: int,
    backoff_s: float,
) -> tuple[list[float], int, int]:
    """Closed-loop overload: each client retries until its quota is served."""
    lock = threading.Lock()
    latencies: list[float] = []
    shed = 0
    errors = 0

    def client() -> None:
        nonlocal shed, errors
        served = 0
        while served < requests_per_client:
            start = time.perf_counter()
            try:
                engine.predict(key, X)
            except Overloaded:
                with lock:
                    shed += 1
                time.sleep(backoff_s)
                continue
            except Exception:  # noqa: BLE001 - counted, asserted zero below
                with lock:
                    errors += 1
                served += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
            served += 1

    threads = [threading.Thread(target=client) for _ in range(clients)]
    wall = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall
    return latencies, shed, errors


def run(args: argparse.Namespace) -> dict[str, object]:
    delay_s = args.delay_ms / 1000.0
    tree = random_tree(depth=args.depth, seed=args.seed)
    compiled = tree.compiled()
    slow = SlowModel(compiled, delay_s=delay_s)
    engine = ServingEngine(max_queue_depth=args.queue_depth)
    key = engine.registry.register(slow)
    X = random_batch(tree.schema, args.records, seed=args.seed + 1)
    expected = compiled.predict(X)

    # Bit-identity: the hardened path may shed a request, but it may
    # never alter an admitted answer.
    np.testing.assert_array_equal(engine.predict(key, X), expected)

    base = _uncontended(engine, key, X, args.baseline_calls)
    base_p99 = _percentile(base, 99)

    # Informational SLO: sample the availability objective before and
    # after the overload and report burn rates.  A saturation run is
    # *designed* to shed, so the burn must blow far past every alerting
    # threshold — that asymmetry (alerts fire, yet admitted traffic
    # stays healthy) is exactly what load shedding buys.
    slo = SLOMonitor(
        SLODefinition(name="saturation-availability", objective=args.slo_objective)
    )
    slo.observe_stats(engine.registry.stats(key).snapshot())

    latencies, shed, errors = _saturate(
        engine,
        key,
        X,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        backoff_s=delay_s / 4.0,
    )
    sat_p99 = _percentile(latencies, 99)
    snap = engine.registry.stats(key).snapshot()
    admission = engine.admission.snapshot()
    slo.observe_stats(snap)
    slo_report = slo.snapshot()

    # Post-overload identity spot check: the engine recovered cleanly.
    np.testing.assert_array_equal(engine.predict(key, X), expected)

    capacity_rps = args.queue_depth / delay_s
    offered = args.clients / delay_s  # each client re-offers every delay
    p99_bound = args.p99_factor * max(base_p99, delay_s)
    checks = {
        "shed_positive": shed > 0,
        "p99_bounded": sat_p99 <= p99_bound,
        "no_errors": errors == 0,
        "all_served": len(latencies)
        == args.clients * args.requests_per_client,
    }
    report: dict[str, object] = {
        "benchmark": "serve_saturation",
        "python": platform.python_version(),
        "config": {
            "queue_depth": args.queue_depth,
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "delay_ms": args.delay_ms,
            "records_per_request": args.records,
            "tree_depth": args.depth,
            "seed": args.seed,
            "p99_factor": args.p99_factor,
        },
        "offered_vs_capacity": round(offered / capacity_rps, 2),
        "uncontended_p99_ms": round(base_p99 * 1000, 3),
        "saturated_p99_ms": round(sat_p99 * 1000, 3),
        "p99_bound_ms": round(p99_bound * 1000, 3),
        "admitted": len(latencies),
        "shed": shed,
        "shed_fraction": round(shed / max(shed + len(latencies), 1), 3),
        "errors": errors,
        "peak_queue_depth": admission["peak_depth"],
        "stats": {k: snap[k] for k in ("requests", "batches", "shed", "timeouts")},
        "slo": slo_report,
        "checks": checks,
        "passed": all(checks.values()),
    }
    print(
        f"capacity={capacity_rps:.0f} rps, offered~{offered / capacity_rps:.1f}x: "
        f"admitted={len(latencies)} shed={shed} errors={errors}"
    )
    print(
        f"p99 uncontended={base_p99 * 1000:.2f}ms "
        f"saturated={sat_p99 * 1000:.2f}ms bound={p99_bound * 1000:.2f}ms"
    )
    for name, ok in checks.items():
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    worst = max(
        (a["short_burn"] for a in slo_report["alerts"]), default=0.0
    )
    print(
        f"slo {slo_report['slo']}: compliance="
        f"{slo_report['compliance']:.4f} worst_burn={worst:.1f} "
        f"firing={slo_report['firing']}"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queue-depth", type=int, default=2)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests-per-client", type=int, default=40)
    parser.add_argument("--delay-ms", type=float, default=5.0)
    parser.add_argument("--records", type=int, default=64)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--baseline-calls", type=int, default=50)
    parser.add_argument("--p99-factor", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--slo-objective",
        type=float,
        default=0.999,
        metavar="OBJ",
        help="availability objective for the informational burn-rate report",
    )
    parser.add_argument("--out", default="BENCH_serve.json", metavar="PATH")
    args = parser.parse_args(argv)

    if args.clients <= args.queue_depth:
        parser.error("--clients must exceed --queue-depth to overload the gate")

    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["passed"]:
        print("ERROR: saturation bounds violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
