"""Figure 16 — CMP vs SPRINT, RainForest, CLOUDS on Function 2.

Paper claims checked: RainForest slightly outperforms CMP (thanks to its
in-memory AVC buffer), CMP beats CLOUDS (no second pass per level), and
SPRINT is several times slower than CMP (the paper: "nearly five times").
"""

from __future__ import annotations

from conftest import by_builder, scaled, write_result
from repro.eval import experiments

SIZES = scaled(20_000, 50_000, 100_000)


def _run(bench_config):
    return experiments.comparison("F2", SIZES, bench_config, seed=0)


def test_fig16_comparison_f2(benchmark, bench_config):
    records = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    rows = experiments.records_as_rows(records)
    print("\n" + write_result("fig16_comparison_f2", rows, note="Figure 16 (Function 2)."))

    grouped = by_builder(records)
    ratios = []
    for n in SIZES:
        cmp_ms = grouped["CMP"][n].simulated_ms
        ratios.append(grouped["SPRINT"][n].simulated_ms / cmp_ms)
        assert grouped["SPRINT"][n].simulated_ms > 1.5 * cmp_ms
        assert grouped["CLOUDS"][n].simulated_ms > cmp_ms
        assert grouped["RainForest"][n].simulated_ms < cmp_ms * 1.25
    # The SPRINT/CMP gap widens with the training set (paper: ~5x at 2.5M).
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.0
