"""Extension bench — the exact-algorithm design space (SLIQ vs SPRINT vs
windowed C4.5).

Not a paper figure: §1.1 discusses SLIQ (in-memory class list, lists read
once per level) and C4.5's windowing (sample + misclassified records) as
the context CMP improves on.  This bench quantifies the triangle:

* SLIQ and SPRINT grow identical exact trees; SLIQ does less list I/O but
  pins a class list in memory;
* windowing does far less I/O than either but gives up exactness;
* CMP (from the main benches) beats all three on the I/O-vs-accuracy
  frontier.
"""

from __future__ import annotations

from conftest import scaled, write_result
from repro.baselines.sliq import SliqBuilder
from repro.baselines.sprint import SprintBuilder
from repro.baselines.windowing import WindowingBuilder
from repro.data.synthetic import generate_agrawal
from repro.eval.harness import run_builder

N = scaled(50_000)[0]


def _run(bench_config):
    dataset = generate_agrawal("F2", N, seed=0)
    rows = []
    trees = {}
    for builder in (
        SprintBuilder(bench_config),
        SliqBuilder(bench_config),
        WindowingBuilder(bench_config, initial_fraction=0.1),
    ):
        record, result = run_builder(builder, dataset)
        row = record.as_dict()
        row["aux_records"] = (
            result.stats.io.aux_records_read + result.stats.io.aux_records_written
        )
        rows.append(row)
        trees[builder.name] = result.tree
    return rows, trees


def test_exact_baseline_triangle(benchmark, bench_config):
    rows, trees = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    print("\n" + write_result("extension_exact_baselines", rows))

    by = {r["builder"]: r for r in rows}
    # SLIQ == SPRINT trees; less auxiliary I/O; more memory.
    assert trees["SLIQ"].render() == trees["SPRINT"].render()
    assert by["SLIQ"]["aux_records"] < by["SPRINT"]["aux_records"]
    assert by["SLIQ"]["peak_mem_MB"] > by["SPRINT"]["peak_mem_MB"]
    # Windowing: least simulated time among the three, small accuracy gap.
    assert by["C4.5-window"]["sim_ms"] < by["SLIQ"]["sim_ms"]
    assert by["C4.5-window"]["train_acc"] > by["SPRINT"]["train_acc"] - 0.06
