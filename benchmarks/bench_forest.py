"""Benchmark: shared-scan bagged training and packed forest inference.

Standalone script (not a pytest benchmark), the perf gate for the
ensemble subsystem.  Two claims are measured and asserted:

1. **Training** — one :class:`~repro.ensemble.BaggedForestBuilder` build
   of ``--trees`` member trees (one scan per level shared by every
   member) against training the same ``--trees`` trees independently,
   each on its materialized bootstrap sample.  Every shared member must
   be bit-identical to its independent twin (asserted always), the
   shared build must issue strictly fewer dataset scans (asserted
   always), and ``--assert-training-speedup X`` additionally gates the
   wall-clock ratio.
2. **Inference** — one packed :class:`~repro.core.compiled.CompiledForest`
   routing call over ``--query-records`` rows against the per-tree
   predict loop.  Raw decision values must match the explicit
   per-member accumulation bit-for-bit and packed ``predict`` must equal
   the per-tree soft-vote loop (asserted always);
   ``--assert-inference-speedup X`` gates the wall-clock ratio.

A boosted-forest build is also timed (and its fingerprint checked
deterministic across two builds) so the JSON tracks both trainers.
CI runs::

    PYTHONPATH=src python benchmarks/bench_forest.py \
        --records 600000 --query-records 1000000 --trees 8 \
        --assert-training-speedup 1.0 --assert-inference-speedup 1.2 \
        --out BENCH_forest.json

Wall speedups are meaningless on heavily loaded machines — leave the
``--assert-*-speedup`` flags unset there; bit-identity and the scan-count
gate are asserted regardless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import BuilderConfig
from repro.core import native_scan
from repro.core.cmp_s import CMPSBuilder
from repro.core.native import forest_kernel
from repro.data.synthetic import generate_agrawal
from repro.ensemble import (
    BaggedForestBuilder,
    HistGradientBoostingBuilder,
    bootstrap_indices,
    member_seed,
)
from repro.verify.differential import tree_signature


def _train_shared(dataset, config, n_trees, repeats):
    walls, result = [], None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = BaggedForestBuilder(config, n_trees=n_trees).build(dataset)
        walls.append(time.perf_counter() - start)
    return result, min(walls)


def _train_independent(dataset, config, n_trees, repeats):
    """Time the baseline: each member built alone on its bootstrap sample.

    Materializing the bootstrap sample is part of the independent
    pipeline's cost (the shared builder never materializes one), so the
    ``take`` is inside the timed region.
    """
    n = dataset.n_records
    walls, trees, scans, pages = [], None, 0, 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        built, scans, pages = [], 0, 0
        for t in range(n_trees):
            boot = dataset.take(np.sort(bootstrap_indices(config.seed, t, n)))
            result = CMPSBuilder(
                config.with_(seed=member_seed(config.seed, t))
            ).build(boot)
            built.append(result.tree)
            scans += result.stats.io.scans
            pages += result.stats.io.pages_read
        walls.append(time.perf_counter() - start)
        trees = built
    return trees, min(walls), scans, pages


def _time_once(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def run(args) -> tuple[dict[str, object], bool]:
    dataset = generate_agrawal(args.function, args.records, seed=args.seed)
    config = BuilderConfig(max_depth=args.depth, seed=args.seed)
    report: dict[str, object] = {
        "benchmark": "forest",
        "function": args.function,
        "records": args.records,
        "query_records": args.query_records,
        "trees": args.trees,
        "depth": args.depth,
        "seed": args.seed,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "native_scan_kernels": native_scan.available(),
        "native_forest_kernel": forest_kernel() is not None,
    }
    ok = True

    # --- Training: shared-scan vs independent builds. ---------------------
    shared, shared_wall = _train_shared(dataset, config, args.trees, args.repeats)
    independent, indep_wall, indep_scans, indep_pages = _train_independent(
        dataset, config, args.trees, args.repeats
    )
    identical = all(
        tree_signature(m) == tree_signature(s)
        for m, s in zip(shared.forest.members, independent)
    )
    ok &= identical
    fewer_scans = shared.stats.io.scans < indep_scans
    ok &= fewer_scans
    training = {
        "bit_identical": identical,
        "shared_wall_seconds": round(shared_wall, 3),
        "independent_wall_seconds": round(indep_wall, 3),
        "wall_speedup": round(indep_wall / max(shared_wall, 1e-9), 3),
        "shared_scans": shared.stats.io.scans,
        "independent_scans": indep_scans,
        "scan_ratio": round(indep_scans / max(shared.stats.io.scans, 1), 2),
        "fewer_scans": fewer_scans,
        "shared_pages_read": shared.stats.io.pages_read,
        "independent_pages_read": indep_pages,
        "shared_level_scans": shared.stats.shared_level_scans,
        "levels": shared.stats.levels_built,
        "nodes": shared.stats.nodes_created,
        "simulated_ms": round(shared.stats.simulated_ms, 3),
    }
    report["training"] = training
    print(
        f"training: identical={identical} shared={shared_wall:.2f}s "
        f"independent={indep_wall:.2f}s (x{training['wall_speedup']:.2f}) "
        f"scans {shared.stats.io.scans} vs {indep_scans}"
    )
    if args.assert_training_speedup is not None:
        if training["wall_speedup"] < args.assert_training_speedup:
            print(
                f"FAIL: shared training speedup {training['wall_speedup']:.2f} "
                f"< required {args.assert_training_speedup:.2f}",
                file=sys.stderr,
            )
            ok = False

    # --- Inference: packed forest vs per-tree loop at query scale. --------
    Xq = generate_agrawal(args.function, args.query_records, seed=args.seed + 1).X
    cf = shared.forest.compiled()
    packed_values, packed_s = _time_once(lambda: cf.decision_values(Xq))

    def member_loop_values():
        acc = np.tile(cf.base, (len(Xq), 1))
        for t, member in enumerate(cf.members):
            acc += cf.values[cf.leaf_row[cf.tree_offsets[t] + member.route(Xq)]]
        return acc

    loop_values, loop_s = _time_once(member_loop_values)
    values_identical = bool(np.array_equal(packed_values, loop_values))
    ok &= values_identical

    packed_labels, packed_predict_s = _time_once(lambda: cf.predict(Xq))

    def member_soft_vote():
        acc = np.zeros((len(Xq), cf.values.shape[1]))
        for member in shared.forest.members:
            acc += member.compiled().predict_proba(Xq)
        return np.argmax(acc, axis=1)

    vote_labels, vote_s = _time_once(member_soft_vote)
    labels_equal = bool(np.array_equal(packed_labels, vote_labels))
    ok &= labels_equal
    inference = {
        "values_bit_identical": values_identical,
        "predict_equal_to_soft_vote": labels_equal,
        "packed_values_seconds": round(packed_s, 4),
        "member_loop_seconds": round(loop_s, 4),
        "values_speedup": round(loop_s / max(packed_s, 1e-9), 3),
        "packed_predict_seconds": round(packed_predict_s, 4),
        "soft_vote_seconds": round(vote_s, 4),
        "predict_speedup": round(vote_s / max(packed_predict_s, 1e-9), 3),
        "rows_per_second_packed": int(args.query_records / max(packed_predict_s, 1e-9)),
    }
    report["inference"] = inference
    print(
        f"inference: identical={values_identical} "
        f"packed={packed_predict_s:.3f}s soft-vote={vote_s:.3f}s "
        f"(x{inference['predict_speedup']:.2f})"
    )
    if args.assert_inference_speedup is not None:
        if inference["predict_speedup"] < args.assert_inference_speedup:
            print(
                f"FAIL: packed inference speedup "
                f"{inference['predict_speedup']:.2f} "
                f"< required {args.assert_inference_speedup:.2f}",
                file=sys.stderr,
            )
            ok = False

    # --- Boosting: wall clock + fingerprint determinism. ------------------
    start = time.perf_counter()
    boosted = HistGradientBoostingBuilder(
        config, n_iterations=args.boost_iterations
    ).build(dataset)
    boost_wall = time.perf_counter() - start
    fp = boosted.forest.compiled().fingerprint
    again = HistGradientBoostingBuilder(
        config, n_iterations=args.boost_iterations
    ).build(dataset)
    deterministic = again.forest.compiled().fingerprint == fp
    ok &= deterministic
    train_acc = float(np.mean(boosted.forest.predict(dataset.X) == dataset.y))
    report["boosting"] = {
        "iterations": args.boost_iterations,
        "members": boosted.forest.n_trees,
        "wall_seconds": round(boost_wall, 3),
        "deterministic": deterministic,
        "train_accuracy": round(train_acc, 4),
        "scans": boosted.stats.io.scans,
        "shared_level_scans": boosted.stats.shared_level_scans,
    }
    print(
        f"boosting: {boosted.forest.n_trees} members in {boost_wall:.2f}s "
        f"deterministic={deterministic} train_acc={train_acc:.3f}"
    )
    report["ok"] = ok
    return report, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=600_000)
    parser.add_argument("--query-records", type=int, default=1_000_000)
    parser.add_argument("--trees", type=int, default=8)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--boost-iterations", type=int, default=4)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="training builds per configuration; wall reported as min",
    )
    parser.add_argument(
        "--assert-training-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless shared-scan training beats independent builds by X",
    )
    parser.add_argument(
        "--assert-inference-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless packed predict beats the per-tree soft-vote by X",
    )
    parser.add_argument("--out", default="BENCH_forest.json", metavar="PATH")
    args = parser.parse_args(argv)

    report, ok = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print("bench_forest: FAILED (see report)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
