"""Benchmark: chunk-parallel level scans vs the serial path.

Standalone script (not a pytest benchmark): builds each CMP-family
classifier serially, with ``--workers`` thread workers, and with
``--workers`` forked process workers; verifies every tree (including a
kernel-disabled rebuild) is bit-identical; times the native gini-sweep
kernel against the numpy sweep; and emits ``BENCH_scan.json``.  CI runs
it as a perf gate and uploads the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_scan_parallel.py \
        --records 80000 --workers 4 --repeats 3 \
        --assert-speedup 1.5 --out BENCH_scan.json

Each configuration is built ``--repeats`` times and reported as the
**min and median** wall-clock across repeats (a single-repeat number is
dominated by noise; speedups compare mins).  The thread rows mostly show
the GIL ceiling; the process rows are the ones expected to scale on
multi-core machines, which is what ``--assert-speedup`` gates in CI.
On single-core machines wall speedups are meaningless — leave
``--assert-speedup`` unset there; bit-identity and the kernel-vs-numpy
sweep comparison are asserted regardless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import BuilderConfig
from repro.core import native_scan
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.gini import boundary_ginis
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal

BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


def _measure(builder_cls, dataset, config: BuilderConfig, repeats: int) -> dict[str, object]:
    """Build ``repeats`` times; aggregate wall-clock as min/median."""
    walls: list[float] = []
    tree_json = None
    stats = None
    for _ in range(max(1, repeats)):
        result = builder_cls(config).build(dataset)
        walls.append(result.stats.wall_seconds)
        current = tree_to_json(result.tree)
        if tree_json is None:
            tree_json = current
        elif tree_json != current:
            raise AssertionError(
                f"{builder_cls.name}: repeats produced different trees"
            )
        stats = result.stats
    return {
        "tree_json": tree_json,
        "wall_seconds_min": round(min(walls), 4),
        "wall_seconds_median": round(statistics.median(walls), 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "simulated_ms": round(stats.simulated_ms, 3),
        "scans": stats.io.scans,
        "pages_read": stats.io.pages_read,
        "scan_workers": stats.scan_workers,
        "scan_backend": stats.scan_backend,
        "parallel_batches": stats.parallel_batches,
        "native_kernel_calls": stats.native_kernel_calls,
        "phase_seconds": {k: round(v, 4) for k, v in sorted(stats.phase_seconds.items())},
        "nodes": stats.nodes_created,
        "levels": stats.levels_built,
    }


def _time_calls(fn, repeats: int, calls: int) -> float:
    """Min-of-repeats wall seconds for ``calls`` invocations of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def sweep_microbenchmark(repeats: int) -> dict[str, object]:
    """Native boundary-gini sweep vs the numpy sweep on a large grid."""
    rng = np.random.default_rng(0)
    cum = rng.integers(0, 50, size=(4096, 4)).astype(np.float64).cumsum(axis=0)
    totals = cum[-1].copy()
    calls = 50
    native_available = native_scan.available()
    native_s = (
        _time_calls(lambda: boundary_ginis(cum, totals), repeats, calls)
        if native_available
        else None
    )
    with native_scan.force_numpy():
        numpy_s = _time_calls(lambda: boundary_ginis(cum, totals), repeats, calls)
        reference = boundary_ginis(cum, totals)
    entry: dict[str, object] = {
        "boundaries": int(cum.shape[0]),
        "classes": int(cum.shape[1]),
        "calls": calls,
        "native_available": native_available,
        "numpy_seconds": round(numpy_s, 5),
    }
    if native_s is not None:
        entry["native_seconds"] = round(native_s, 5)
        entry["native_speedup"] = round(numpy_s / max(native_s, 1e-9), 3)
        entry["bit_identical"] = bool(
            np.array_equal(reference, boundary_ginis(cum, totals))
        )
    return entry


def run(records: int, workers: int, function: str, seed: int, repeats: int) -> dict[str, object]:
    dataset = generate_agrawal(function, records, seed=seed)
    config = BuilderConfig(max_depth=8)
    report: dict[str, object] = {
        "benchmark": "scan_parallel",
        "function": function,
        "records": records,
        "workers": workers,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "native_kernels": native_scan.available(),
        "builders": {},
    }
    ok = True
    for builder_cls in BUILDERS:
        serial = _measure(builder_cls, dataset, config, repeats)
        threaded = _measure(
            builder_cls, dataset, config.with_(scan_workers=workers), repeats
        )
        process = _measure(
            builder_cls,
            dataset,
            config.with_(scan_workers=workers, scan_backend="process"),
            repeats,
        )
        # One kernel-disabled build covers the {numpy} x {serial} corner;
        # the suite's bit-identity matrix covers the rest exhaustively.
        with native_scan.force_numpy():
            no_native = _measure(builder_cls, dataset, config, 1)
        reference = serial.pop("tree_json")
        identical = all(
            other.pop("tree_json") == reference
            for other in (threaded, process, no_native)
        )
        ok &= identical
        entry = {
            "bit_identical": identical,
            "serial": serial,
            "thread": threaded,
            "process": process,
            "no_native_serial": no_native,
            "thread_wall_speedup": round(
                serial["wall_seconds_min"] / max(threaded["wall_seconds_min"], 1e-9), 3
            ),
            "process_wall_speedup": round(
                serial["wall_seconds_min"] / max(process["wall_seconds_min"], 1e-9), 3
            ),
            "simulated_speedup": round(
                serial["simulated_ms"] / max(threaded["simulated_ms"], 1e-9), 3
            ),
        }
        report["builders"][builder_cls.name] = entry
        print(
            f"{builder_cls.name:6s} identical={identical} "
            f"serial={serial['wall_seconds_min']:.3f}s "
            f"thread={threaded['wall_seconds_min']:.3f}s "
            f"(x{entry['thread_wall_speedup']:.2f}) "
            f"process={process['wall_seconds_min']:.3f}s "
            f"(x{entry['process_wall_speedup']:.2f})"
        )
    report["all_bit_identical"] = ok
    report["sweep_microbenchmark"] = sweep = sweep_microbenchmark(repeats)
    if "native_speedup" in sweep:
        print(
            f"gini sweep: numpy={sweep['numpy_seconds']:.4f}s "
            f"native={sweep['native_seconds']:.4f}s "
            f"(x{sweep['native_speedup']:.2f})"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="builds per configuration; wall-clock reported as min/median",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every builder's process-backend min-wall speedup "
        "over serial is at least X (only meaningful on multi-core machines)",
    )
    parser.add_argument("--out", default="BENCH_scan.json", metavar="PATH")
    args = parser.parse_args(argv)

    report = run(args.records, args.workers, args.function, args.seed, args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    failed = False
    if not report["all_bit_identical"]:
        print("ERROR: parallel/native build diverged from serial", file=sys.stderr)
        failed = True
    sweep = report["sweep_microbenchmark"]
    if sweep.get("native_available"):
        if not sweep.get("bit_identical"):
            print("ERROR: native gini sweep diverged from numpy", file=sys.stderr)
            failed = True
        if sweep.get("native_speedup", 0.0) <= 1.0:
            print(
                f"ERROR: native gini sweep not faster than numpy "
                f"(x{sweep.get('native_speedup')})",
                file=sys.stderr,
            )
            failed = True
    if args.assert_speedup is not None:
        for name, entry in report["builders"].items():
            if entry["process_wall_speedup"] < args.assert_speedup:
                print(
                    f"ERROR: {name} process speedup "
                    f"x{entry['process_wall_speedup']} below "
                    f"x{args.assert_speedup}",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
