"""Benchmark: chunk-parallel level scans vs the serial path.

Standalone script (not a pytest benchmark): builds each CMP-family
classifier serially and with ``--workers`` routing threads, verifies the
trees are bit-identical, and emits ``BENCH_scan.json`` with per-phase
wall-clock timings, scan counts and the measured wall/simulated speedups.
CI runs it as a smoke step and uploads the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_scan_parallel.py \
        --records 20000 --workers 4 --out BENCH_scan.json

Interpreting the numbers: routing here is NumPy-heavy Python, so
wall-clock gains on small inputs are modest (and can dip below 1x under
thread contention); the honest headline is the *simulated* speedup, where
the cost model divides per-record CPU across workers while page I/O stays
serial — one spindle, however many routing threads.  Bit-identity is the
hard guarantee either way.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.config import BuilderConfig
from repro.core.cmp_b import CMPBBuilder
from repro.core.cmp_full import CMPBuilder
from repro.core.cmp_s import CMPSBuilder
from repro.core.serialize import tree_to_json
from repro.data.synthetic import generate_agrawal

BUILDERS = (CMPSBuilder, CMPBBuilder, CMPBuilder)


def _measure(builder_cls, dataset, config: BuilderConfig) -> dict[str, object]:
    result = builder_cls(config).build(dataset)
    stats = result.stats
    return {
        "tree_json": tree_to_json(result.tree),
        "wall_seconds": round(stats.wall_seconds, 4),
        "simulated_ms": round(stats.simulated_ms, 3),
        "scans": stats.io.scans,
        "pages_read": stats.io.pages_read,
        "scan_workers": stats.scan_workers,
        "parallel_batches": stats.parallel_batches,
        "phase_seconds": {k: round(v, 4) for k, v in sorted(stats.phase_seconds.items())},
        "nodes": stats.nodes_created,
        "levels": stats.levels_built,
    }


def run(records: int, workers: int, function: str, seed: int) -> dict[str, object]:
    dataset = generate_agrawal(function, records, seed=seed)
    config = BuilderConfig(max_depth=8)
    report: dict[str, object] = {
        "benchmark": "scan_parallel",
        "function": function,
        "records": records,
        "workers": workers,
        "seed": seed,
        "python": platform.python_version(),
        "builders": {},
    }
    ok = True
    for builder_cls in BUILDERS:
        serial = _measure(builder_cls, dataset, config)
        parallel = _measure(
            builder_cls, dataset, config.with_(scan_workers=workers)
        )
        identical = serial.pop("tree_json") == parallel.pop("tree_json")
        ok &= identical
        entry = {
            "bit_identical": identical,
            "serial": serial,
            "parallel": parallel,
            "wall_speedup": round(
                serial["wall_seconds"] / max(parallel["wall_seconds"], 1e-9), 3
            ),
            "simulated_speedup": round(
                serial["simulated_ms"] / max(parallel["simulated_ms"], 1e-9), 3
            ),
        }
        report["builders"][builder_cls.name] = entry
        print(
            f"{builder_cls.name:6s} identical={identical} "
            f"serial={serial['wall_seconds']:.3f}s "
            f"parallel={parallel['wall_seconds']:.3f}s "
            f"(x{entry['wall_speedup']:.2f} wall, "
            f"x{entry['simulated_speedup']:.2f} simulated)"
        )
    report["all_bit_identical"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--function", default="F2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_scan.json", metavar="PATH")
    args = parser.parse_args(argv)

    report = run(args.records, args.workers, args.function, args.seed)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["all_bit_identical"]:
        print("ERROR: parallel build diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
