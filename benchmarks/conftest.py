"""Shared benchmark utilities.

Every benchmark regenerates one table or figure of the paper (DESIGN.md
§4), asserts its *shape* claims, and writes the measured rows to
``benchmarks/results/`` so EXPERIMENTS.md can cite them.  Run with::

    pytest benchmarks/ --benchmark-only

Sizes default to laptop scale (paper: 200k-2.5M records on 1999 hardware);
set ``CMP_BENCH_SCALE`` to multiply the record counts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import experiments
from repro.eval.harness import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Multiplier for record counts (CMP_BENCH_SCALE env var).
SCALE = float(os.environ.get("CMP_BENCH_SCALE", "1.0"))


def scaled(*sizes: int) -> tuple[int, ...]:
    """Apply the global scale factor to a size sweep."""
    return tuple(max(1000, int(s * SCALE)) for s in sizes)


def write_result(name: str, rows: list[dict[str, object]], note: str = "") -> str:
    """Persist a measured table under benchmarks/results/ and return it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_table(rows)
    body = (note + "\n\n" if note else "") + text + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    return text


@pytest.fixture(scope="session")
def bench_config():
    """The configuration used by all paper benchmarks."""
    return experiments.default_config()


def by_builder(records):
    """Group RunRecords: {builder: {n: record}}."""
    out: dict[str, dict[int, object]] = {}
    for r in records:
        out.setdefault(r.builder, {})[r.n_records] = r
    return out
