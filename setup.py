"""Setuptools shim for environments without PEP 517 build isolation.

``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
works offline with the pinned setuptools; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
