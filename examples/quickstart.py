"""Quickstart: train the CMP classifier on a synthetic workload.

Generates an Agrawal Function 2 training set (the paper's main benchmark
workload), trains the full CMP classifier, and evaluates it on held-out
data.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BuilderConfig, CMPBuilder, generate_agrawal
from repro.eval.metrics import accuracy, confusion_matrix


def main() -> None:
    # 100k records, 9 attributes (6 continuous, 3 categorical), 2 classes.
    dataset = generate_agrawal("F2", 100_000, seed=42)
    train, test = dataset.split_holdout(0.2, np.random.default_rng(0))

    config = BuilderConfig(
        n_intervals=100,   # equal-depth intervals per attribute (paper: 100-120)
        max_alive=2,       # alive intervals kept per split (paper: 2 is enough)
        max_depth=10,
        min_records=100,
        prune="public",    # PUBLIC(1) pruning during construction
    )
    result = CMPBuilder(config).build(train)

    print(f"train accuracy : {accuracy(result.tree, train):.4f}")
    print(f"test accuracy  : {accuracy(result.tree, test):.4f}")
    print(f"tree           : {result.tree.n_nodes} nodes, depth {result.tree.depth}")
    print(f"dataset scans  : {result.stats.io.scans}")
    print(f"simulated time : {result.stats.simulated_ms / 1000:.1f} s (1999-disk model)")
    print(f"peak memory    : {result.stats.memory.peak / 1e6:.2f} MB")
    print(f"predictSplit   : {result.stats.prediction_accuracy:.0%} of predictions correct")
    print()
    print("confusion matrix (rows = true class):")
    print(confusion_matrix(result.tree, test))
    print()
    print("top of the decision tree:")
    print("\n".join(result.tree.render().splitlines()[:12]))


if __name__ == "__main__":
    main()
