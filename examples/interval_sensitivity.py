"""Discretization sensitivity: how many intervals does CMP need? (Table 1)

Reproduces the paper's Table 1 analysis — comparing the exact algorithm's
root split against CMP's discretized-and-resolved root split — and renders
the Figure 2 gini curve with its alive intervals as ASCII art.

Run:  python examples/interval_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import experiments
from repro.eval.harness import format_table


def ascii_curve(values: np.ndarray, marks: set[int], width: int = 64, height: int = 12) -> str:
    """Tiny ASCII line plot; columns in ``marks`` are highlighted."""
    finite = values[np.isfinite(values)]
    lo, hi = finite.min(), finite.max()
    span = hi - lo if hi > lo else 1.0
    cols = np.linspace(0, len(values) - 1, min(width, len(values))).astype(int)
    rows: list[str] = []
    for level in range(height, -1, -1):
        cells = []
        for c in cols:
            v = values[c]
            if not np.isfinite(v):
                cells.append(" ")
                continue
            h = (v - lo) / span * height
            if abs(h - level) < 0.5:
                cells.append("#" if int(c) in marks else "*")
            else:
                cells.append(" ")
        rows.append("".join(cells))
    rows.append("-" * len(cols))
    return "\n".join(rows)


def main() -> None:
    print("Table 1: exact vs CMP root splits ('-' = same as exact)")
    rows = experiments.table1(seed=0, agrawal_records=100_000)
    print(format_table(rows))
    print()

    curve = experiments.fig2_gini_curve(n_records=50_000, n_intervals=40, seed=0)
    alive = set(int(i) for i in curve["alive_intervals"])
    # A boundary adjoins its interval: mark boundaries next to alive ones.
    marks = {b for b in range(len(curve["boundary_gini"])) if b in alive or b + 1 in alive}
    print("Figure 2: gini index at the salary boundaries of the Function 2 root")
    print(f"(gini_min = {curve['gini_min'][0]:.4f}; '#' columns adjoin alive intervals)")
    print(ascii_curve(curve["boundary_gini"], marks))


if __name__ == "__main__":
    main()
