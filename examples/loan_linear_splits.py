"""The paper's loan-application story (§2.3, Figures 1, 9 and 13).

Function f labels an applicant approved when ``age >= 40`` and
``salary + commission >= 100 000``.  A univariate tree (SPRINT) can only
approximate the oblique boundary with a staircase of axis-parallel splits
(Figure 9); the full CMP discovers a linear-combination split close to
``salary + commission <= 100 000`` from its bivariate histogram matrices
and builds a tree a fraction of the size (Figure 13).

Run:  python examples/loan_linear_splits.py
"""

from __future__ import annotations

from repro import BuilderConfig, CMPBuilder, generate_function_f
from repro.baselines import SprintBuilder
from repro.core.splits import LinearSplit
from repro.eval.metrics import accuracy


def main() -> None:
    dataset = generate_function_f(50_000, seed=3)
    config = BuilderConfig(
        n_intervals=100, max_depth=10, min_records=50, prune="public"
    )

    cmp_result = CMPBuilder(config).build(dataset)
    sprint_result = SprintBuilder(config).build(dataset)

    print("Function f:  approved iff age >= 40 and salary + commission >= 100000")
    print()
    print(f"{'':14}{'nodes':>7} {'depth':>6} {'accuracy':>9} {'scans':>6} {'sim time':>9}")
    for name, res in (("CMP", cmp_result), ("SPRINT", sprint_result)):
        print(
            f"{name:14}{res.tree.n_nodes:>7} {res.tree.depth:>6} "
            f"{accuracy(res.tree, dataset):>9.4f} {res.stats.io.scans:>6} "
            f"{res.stats.simulated_ms / 1000:>8.1f}s"
        )

    lines = [
        node.split
        for node in cmp_result.tree.iter_nodes()
        if node.split is not None and isinstance(node.split, LinearSplit)
    ]
    print()
    print(f"CMP discovered {len(lines)} linear split(s):")
    for split in lines:
        print(f"  {split.describe(dataset.schema)}")
    print()
    print("CMP tree (compare with the paper's Figure 13):")
    print("\n".join(cmp_result.tree.render().splitlines()[:14]))
    print()
    print("SPRINT tree — the Figure 9 staircase (first 14 lines of "
          f"{sprint_result.tree.n_nodes} nodes):")
    print("\n".join(sprint_result.tree.render().splitlines()[:14]))


if __name__ == "__main__":
    main()
