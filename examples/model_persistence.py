"""End-to-end library workflow: CSV in, trained model out, reload, plot.

Exercises the adoption surface around the classifier itself: export a
synthetic training set to CSV, reload it with schema inference, train CMP,
persist the model as JSON, reload it in a "fresh process", verify the
predictions match, and emit a Graphviz rendering.

Run:  python examples/model_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import BuilderConfig, CMPBuilder, generate_function_f
from repro.core.serialize import tree_from_json, tree_to_dot, tree_to_json
from repro.data import load_csv, save_csv
from repro.eval.metrics import accuracy


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cmp_repro_"))
    csv_path = workdir / "loans.csv"
    model_path = workdir / "model.json"
    dot_path = workdir / "model.dot"

    # 1. Materialize a training file and load it back with schema inference.
    save_csv(generate_function_f(20_000, seed=1), csv_path)
    dataset = load_csv(csv_path)
    print(f"loaded {dataset.n_records} records, "
          f"{dataset.n_attributes} attributes from {csv_path}")

    # 2. Train and persist.
    train, test = dataset.split_holdout(0.25, np.random.default_rng(0))
    config = BuilderConfig(n_intervals=64, max_depth=8, min_records=50, prune="public")
    result = CMPBuilder(config).build(train)
    model_path.write_text(tree_to_json(result.tree, indent=2))
    print(f"saved model ({model_path.stat().st_size} bytes JSON) -> {model_path}")

    # 3. Reload and verify behavioural identity.
    reloaded = tree_from_json(model_path.read_text())
    assert np.array_equal(reloaded.predict(test.X), result.tree.predict(test.X))
    print(f"reloaded model: test accuracy {accuracy(reloaded, test):.4f} "
          "(identical predictions)")

    # 4. Graphviz export (render with: dot -Tpng model.dot -o model.png).
    dot_path.write_text(tree_to_dot(reloaded, max_depth=3))
    print(f"wrote Graphviz rendering -> {dot_path}")
    print()
    print(dot_path.read_text()[:400])


if __name__ == "__main__":
    main()
