"""Head-to-head I/O, time and memory comparison (Figures 16 and 19 in one).

Runs all five classifiers — the CMP family and the three baselines — on
one Function 2 training set and prints the comparison the paper's
evaluation section is built around: dataset scans, auxiliary-structure
I/O, deterministic simulated time (1999-disk cost model), wall-clock time
and peak tracked memory.

Run:  python examples/io_cost_comparison.py [n_records]
"""

from __future__ import annotations

import sys

from repro import BuilderConfig, CMPBBuilder, CMPBuilder, CMPSBuilder, generate_agrawal
from repro.baselines import CloudsBuilder, RainForestBuilder, SprintBuilder
from repro.eval.harness import format_table, run_builder


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    dataset = generate_agrawal("F2", n, seed=1)
    config = BuilderConfig(
        n_intervals=100, max_depth=10, min_records=max(50, n // 1000), prune="public"
    )

    rows = []
    for builder_cls in (
        CMPSBuilder, CMPBBuilder, CMPBuilder,
        CloudsBuilder, RainForestBuilder, SprintBuilder,
    ):
        record, result = run_builder(builder_cls(config), dataset)
        row = record.as_dict()
        row["aux_MB"] = round(
            8
            * (
                result.stats.io.aux_records_read
                + result.stats.io.aux_records_written
            )
            / 1e6,
            1,
        )
        rows.append(row)

    print(f"Function 2, {n} records — all classifiers, same configuration\n")
    print(format_table(rows))
    print()
    print("Reading the table against the paper's claims:")
    print(" * CMP-S needs ~half the scans of CLOUDS (no per-level exact pass)")
    print(" * CMP-B <= CMP-S scans (two tree levels per scan when prediction hits)")
    print(" * SPRINT's attribute-list traffic (aux_MB) dwarfs everyone's I/O")
    print(" * RainForest is fastest but holds a 20 MB AVC buffer throughout")


if __name__ == "__main__":
    main()
