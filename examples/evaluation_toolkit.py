"""Evaluation utilities: cross-validation, recall, probability outputs.

Cross-validates CMP against the exact RainForest baseline on Function 6
(an additive salary+commission workload where CMP's linear splits help),
then inspects per-class recall and leaf-probability confidence.

Run:  python examples/evaluation_toolkit.py
"""

from __future__ import annotations

import numpy as np

from repro import BuilderConfig, CMPBuilder, generate_agrawal
from repro.baselines import RainForestBuilder
from repro.eval import cross_validate, per_class_recall
from repro.eval.harness import format_table


def main() -> None:
    dataset = generate_agrawal("F6", 30_000, seed=5)
    config = BuilderConfig(n_intervals=64, max_depth=9, min_records=60, prune="public")

    rows = []
    for name, factory in (
        ("CMP", lambda: CMPBuilder(config)),
        ("RainForest", lambda: RainForestBuilder(config)),
    ):
        cv = cross_validate(factory, dataset, k=5, seed=0)
        rows.append(
            {
                "builder": name,
                "cv_mean": round(cv.mean, 4),
                "cv_std": round(cv.std, 4),
                "folds": cv.n_folds,
            }
        )
    print("5-fold cross-validation on Function 6 (30k records):\n")
    print(format_table(rows))

    # Per-class recall and confidence on a holdout.
    train, test = dataset.split_holdout(0.25, np.random.default_rng(1))
    result = CMPBuilder(config).build(train)
    recall = per_class_recall(result.tree, test)
    proba = result.tree.predict_proba(test.X)
    confidence = proba.max(axis=1)
    print()
    for k, label in enumerate(dataset.schema.class_labels):
        print(f"recall[{label}] = {recall[k]:.4f}")
    print(f"mean leaf confidence = {confidence.mean():.4f}")
    print(f"low-confidence (<0.7) records = {(confidence < 0.7).mean():.2%}")


if __name__ == "__main__":
    main()
