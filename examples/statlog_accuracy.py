"""Held-out accuracy across the STATLOG stand-ins (Table 1's datasets).

Trains CMP and the exact SPRINT baseline on each STATLOG stand-in with a
75/25 holdout and compares accuracies — the paper's claim being that CMP's
discretization plus alive-interval resolution loses essentially nothing
against exact split selection.

Run:  python examples/statlog_accuracy.py
"""

from __future__ import annotations

import numpy as np

from repro import BuilderConfig, CMPSBuilder, generate_statlog
from repro.baselines import SprintBuilder
from repro.data.statlog import STATLOG_SPECS
from repro.eval.harness import format_table, run_builder


def main() -> None:
    rng = np.random.default_rng(0)
    config = BuilderConfig(
        n_intervals=64, max_depth=12, min_records=20, prune="public"
    )
    rows = []
    for name in sorted(STATLOG_SPECS):
        dataset = generate_statlog(name, seed=0)
        train, test = dataset.split_holdout(0.25, rng)
        for builder_cls in (CMPSBuilder, SprintBuilder):
            record, __ = run_builder(builder_cls(config), train, test)
            rows.append(
                {
                    "dataset": name,
                    "builder": record.builder,
                    "classes": dataset.n_classes,
                    "train_acc": round(record.train_accuracy, 4),
                    "test_acc": round(record.test_accuracy or 0.0, 4),
                    "nodes": record.nodes,
                    "scans": record.scans,
                }
            )
    print("STATLOG stand-ins (same record/attribute/class counts as Table 1)\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
