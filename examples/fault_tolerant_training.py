"""Fault-tolerant training: survive flaky reads, crashes and bad disks.

Walks the whole resilience layer end to end on a stored training table:

1. trains under seeded I/O fault injection — every faulted chunk read is
   retried with (simulated) exponential backoff and the tree comes out
   identical to a clean run;
2. kills a build mid-construction with an injected crash, then resumes
   it from the level checkpoint and verifies the resumed tree is
   bit-identical to an uninterrupted build;
3. flips one byte in the stored table and shows the CMPTBL02 per-page
   checksums rejecting it.

Run:  python examples/fault_tolerant_training.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import BuilderConfig, CMPBuilder, generate_agrawal
from repro.core.serialize import tree_to_json
from repro.io.errors import ChecksumError
from repro.io.faults import FaultInjector, FaultyDataset, InjectedCrash
from repro.io.storage import FilePagedTable, StoredDataset, write_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cmp-resilience-"))
    table_path = workdir / "f2.cmptbl"
    write_table(generate_agrawal("F2", 20_000, seed=42), table_path)
    dataset = StoredDataset(table_path)
    config = BuilderConfig(
        n_intervals=32, max_depth=6, min_records=50, page_records=50
    )

    # --- 1. A clean reference build. -----------------------------------
    clean = CMPBuilder(config).build(dataset)
    reference = tree_to_json(clean.tree)
    print(f"clean build    : {clean.tree.n_nodes} nodes, "
          f"{clean.stats.io.scans} scans")

    # --- 2. The same build on a flaky disk. ----------------------------
    injector = FaultInjector(
        transient_rate=0.05, truncate_rate=0.03, corrupt_rate=0.02, seed=7
    )
    flaky = CMPBuilder(config).build(FaultyDataset(dataset, injector))
    assert tree_to_json(flaky.tree) == reference
    print(f"flaky build    : {injector.total_injected} faults injected, "
          f"{flaky.stats.io.read_retries} retries, "
          f"{flaky.stats.io.backoff_ms:.1f} ms simulated backoff — "
          "identical tree")

    # --- 3. Crash mid-build, resume from the level checkpoint. ---------
    ckpt = workdir / "build.ckpt"
    resilient = config.with_(checkpoint_path=str(ckpt), resume=True)
    try:
        CMPBuilder(resilient).build(
            FaultyDataset(dataset, FaultInjector(kill_at_scan=4))
        )
    except InjectedCrash:
        print(f"crashed build  : killed at scan 4, checkpoint at {ckpt.name}")
    resumed = CMPBuilder(resilient).build(dataset)
    assert tree_to_json(resumed.tree) == reference
    assert resumed.stats.io.scans == clean.stats.io.scans
    print(f"resumed build  : picked up after level "
          f"{resumed.stats.resumed_from_level}, bit-identical tree, "
          f"same {resumed.stats.io.scans}-scan total")

    # --- 4. Silent corruption is caught by page checksums. -------------
    raw = bytearray(table_path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    table_path.write_bytes(bytes(raw))
    try:
        with FilePagedTable(table_path) as table:
            list(table.scan())
    except ChecksumError as exc:
        print(f"corrupt table  : rejected — {exc}")


if __name__ == "__main__":
    main()
